package explore

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/compile"
	"repro/internal/multiset"
	"repro/internal/popmachine"
	"repro/internal/popprog"
	"repro/internal/protocol"
)

// workerCounts are the engine configurations every differential test runs:
// the inline path (1), a split frontier (2), and heavy oversubscription (8).
var workerCounts = []int{1, 2, 8}

// randomProtocol builds a protocol with k states and a random transition
// table. Most draws are not well-formed predicates deciders — which is the
// point: the differential harness must agree on arbitrary reachable graphs,
// including ones with mixed and disagreeing bottom SCCs.
func randomProtocol(t *testing.T, rng *rand.Rand) *protocol.Protocol {
	t.Helper()
	k := 3 + rng.Intn(3)
	names := make([]string, k)
	for i := range names {
		names[i] = fmt.Sprintf("q%d", i)
	}
	b := protocol.NewBuilder("random")
	b.Input(names[0], names[1])
	for _, n := range names {
		b.State(n)
	}
	for i, n := 0, 2+rng.Intn(7); i < n; i++ {
		b.Transition(names[rng.Intn(k)], names[rng.Intn(k)],
			names[rng.Intn(k)], names[rng.Intn(k)])
	}
	var accepting []string
	for _, n := range names {
		if rng.Intn(2) == 0 {
			accepting = append(accepting, n)
		}
	}
	b.Accepting(accepting...)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func assertIdentical(t *testing.T, seq, par *Result, label string) {
	t.Helper()
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("%s: parallel result diverges from sequential:\nseq %+v\npar %+v", label, seq, par)
	}
}

// TestParallelMatchesSequentialRandomProtocols is the protocol half of the
// differential harness: on randomized small protocols, the engine must
// return bit-identical Results — NumStates, bottom-SCC count, outcome and
// witness multisets, even their order — for every worker count.
func TestParallelMatchesSequentialRandomProtocols(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		p := randomProtocol(t, rng)
		sys := NewProtocolSystem(p)
		x := 1 + rng.Int63n(4)
		y := rng.Int63n(4)
		c, err := p.InitialConfig(x, y)
		if err != nil {
			t.Fatal(err)
		}
		opts := Options{MaxStates: 100_000}
		seq, err := Explore[*multiset.Multiset](sys, []*multiset.Multiset{c}, opts)
		if err != nil {
			t.Fatalf("trial %d: sequential: %v", trial, err)
		}
		for _, w := range workerCounts {
			opts.Workers = w
			par, err := ExploreParallel[*multiset.Multiset](sys, []*multiset.Multiset{c}, opts)
			if err != nil {
				t.Fatalf("trial %d workers=%d: %v", trial, w, err)
			}
			assertIdentical(t, seq, par, fmt.Sprintf("trial %d workers=%d (x=%d y=%d)", trial, w, x, y))
		}
	}
}

// TestParallelMatchesSequentialMachine is the population-machine half: the
// compiled Figure 1 machine explored from randomized register placements,
// including multi-initial-state explorations (the union graph over all
// placements of one total).
func TestParallelMatchesSequentialMachine(t *testing.T) {
	machine, err := compile.Compile(popprog.Figure1Program())
	if err != nil {
		t.Fatal(err)
	}
	sys := popmachine.System{M: machine}
	rng := rand.New(rand.NewSource(11))
	opts := Options{MaxStates: 500_000}
	for trial := 0; trial < 10; trial++ {
		regs := multiset.New(len(machine.Registers))
		for total := 1 + rng.Int63n(4); total > 0; total-- {
			regs.Add(rng.Intn(regs.Len()), 1)
		}
		cfg, err := machine.InitialConfig(regs)
		if err != nil {
			t.Fatal(err)
		}
		seq, err := Explore[*popmachine.Config](sys, []*popmachine.Config{cfg}, opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range workerCounts {
			opts.Workers = w
			par, err := ExploreParallel[*popmachine.Config](sys, []*popmachine.Config{cfg}, opts)
			if err != nil {
				t.Fatalf("trial %d workers=%d: %v", trial, w, err)
			}
			assertIdentical(t, seq, par, fmt.Sprintf("trial %d workers=%d", trial, w))
		}
	}

	// Union exploration from every placement of total 4, with a duplicated
	// initial state to exercise the dedup path.
	var initial []*popmachine.Config
	multiset.Enumerate(len(machine.Registers), 4, func(regs *multiset.Multiset) {
		cfg, err := machine.InitialConfig(regs)
		if err != nil {
			t.Fatal(err)
		}
		initial = append(initial, cfg)
	})
	initial = append(initial, initial[0].Clone())
	seq, err := Explore[*popmachine.Config](sys, initial, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range workerCounts {
		opts.Workers = w
		par, err := ExploreParallel[*popmachine.Config](sys, initial, opts)
		if err != nil {
			t.Fatalf("union workers=%d: %v", w, err)
		}
		assertIdentical(t, seq, par, fmt.Sprintf("union workers=%d", w))
	}
}

// TestParallelStateLimitIdentical pins the exactness of ErrStateLimit: the
// engine must refuse at the same canonical point as the sequential BFS, for
// every worker count, with the same error.
func TestParallelStateLimitIdentical(t *testing.T) {
	g := chainSystem{}
	_, seqErr := Explore[int](g, []int{0}, Options{MaxStates: 100})
	if !errors.Is(seqErr, ErrStateLimit) {
		t.Fatalf("sequential err = %v", seqErr)
	}
	for _, w := range workerCounts {
		_, parErr := ExploreParallel[int](g, []int{0}, Options{MaxStates: 100, Workers: w})
		if !errors.Is(parErr, ErrStateLimit) {
			t.Fatalf("workers=%d err = %v, want ErrStateLimit", w, parErr)
		}
		if parErr.Error() != seqErr.Error() {
			t.Fatalf("workers=%d error %q, sequential %q", w, parErr, seqErr)
		}
	}
}

// TestExploreContextCancelled verifies pre-cancelled contexts abort before
// any expansion with the context's error rather than ErrStateLimit.
func TestExploreContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := ExploreContext[int](ctx, chainSystem{}, []int{0}, Options{MaxStates: 1 << 30})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestParallelExploreLargeCycle reruns the deep-graph Tarjan exercise
// through the engine with a split frontier.
func TestParallelExploreLargeCycle(t *testing.T) {
	const depth = 200000
	g := ringAfterPath{depth: depth}
	res, err := ExploreParallel[int](g, []int{0}, Options{MaxStates: depth + 10, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumBottomSCCs != 1 || !res.StabilisesTo(true) {
		t.Fatalf("bottom SCCs %d, outcomes %v", res.NumBottomSCCs, res.Outcomes)
	}
}

// wideSystem fans out to `width` children per level for `depth` levels, then
// funnels everything into one absorbing state: a frontier wide enough to
// split across workers.
type wideSystem struct{ width, depth int }

func (w wideSystem) Key(s [2]int) string { return fmt.Sprintf("%d/%d", s[0], s[1]) }

func (w wideSystem) Successors(s [2]int) [][2]int {
	if s[0] >= w.depth {
		return [][2]int{{w.depth, 0}}
	}
	out := make([][2]int, w.width)
	for i := range out {
		out[i] = [2]int{s[0] + 1, (s[1]*w.width + i) % 9973}
	}
	return out
}

func (w wideSystem) Output(s [2]int) protocol.Output { return protocol.OutputTrue }

// TestParallelWideFrontier forces multi-chunk expansion passes (frontier ≫
// minExpandChunk) and checks bit-identity there too.
func TestParallelWideFrontier(t *testing.T) {
	g := wideSystem{width: 40, depth: 4}
	opts := Options{MaxStates: 200_000}
	seq, err := Explore[[2]int](g, [][2]int{{0, 0}}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if seq.NumStates < 2*minExpandChunk {
		t.Fatalf("test graph too small to split: %d states", seq.NumStates)
	}
	for _, w := range workerCounts {
		opts.Workers = w
		par, err := ExploreParallel[[2]int](g, [][2]int{{0, 0}}, opts)
		if err != nil {
			t.Fatal(err)
		}
		assertIdentical(t, seq, par, fmt.Sprintf("wide workers=%d", w))
	}
}
