package explore

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/obs"
)

// This file is the out-of-core storage tier of the parallel engine: a
// segmented append-only key log (the arena every interned key lives in), the
// spill directory that owns the on-disk lifetime of one exploration, and the
// spillable BFS frontier. The engine alternates between a read-only parallel
// expansion pass and a single-threaded commit pass; everything here exploits
// that contract — appends, seals, spills and frontier writes all happen on
// the single-threaded side, while the expansion side only reads immutable
// data (resident segments, mapped views, or closed spill files).
//
// Segment format: a log record is uvarint(len(key)) followed by the key
// bytes. Records are appended in dense-id order (id k is the k-th record),
// never span a segment boundary, and the log starts with a single zero pad
// byte so that global offset 0 is never a valid record — the interner's
// open-addressing table uses off == 0 as its empty-slot sentinel.

const (
	// defaultSegSize is the sealed-segment size without a memory budget.
	defaultSegSize = 1 << 20
	minSegSize     = 64 << 10
	maxSegSize     = 4 << 20

	// spillBlockRecs / spillBlockBytes bound one frontier read-back block
	// under a memory budget: the expansion pass works block by block so the
	// in-flight pending records stay bounded no matter how wide a level is.
	spillBlockRecs  = 8192
	spillBlockBytes = 1 << 20

	// arenaChunkSize is the allocation unit of byteArena; chunks are never
	// grown in place, so handed-out slices stay valid until reset.
	arenaChunkSize = 64 << 10
)

// spillStore owns the spill directory of one exploration and the resident
// accounting of the spillable tier (key log + frontier buffers). The
// directory is created lazily on first spill and removed — with everything
// in it — by close, which the engine defers before any other cleanup, so
// cancellation or error paths never leave orphaned segment files behind.
type spillStore struct {
	base     string // Options.SpillDir; "" means the system temp dir
	dir      string // created lazily; "" until the first spill
	resident int64
	met      *obs.ExploreMetrics
}

func newSpillStore(base string, met *obs.ExploreMetrics) *spillStore {
	return &spillStore{base: base, met: met}
}

// create opens a fresh spill file, creating the per-run directory on first
// use. Only the single-threaded commit side calls it.
func (st *spillStore) create(name string) (*os.File, string, error) {
	if st.dir == "" {
		dir, err := os.MkdirTemp(st.base, "explore-spill-")
		if err != nil {
			return nil, "", fmt.Errorf("explore: creating spill dir: %w", err)
		}
		st.dir = dir
	}
	path := filepath.Join(st.dir, name)
	f, err := os.Create(path)
	if err != nil {
		return nil, "", fmt.Errorf("explore: creating spill file: %w", err)
	}
	return f, path, nil
}

// addResident adjusts the resident-byte accounting of the spillable tier
// and records the high-water mark. Single-threaded (commit side only).
func (st *spillStore) addResident(d int64) {
	st.resident += d
	if st.met != nil {
		st.met.SpillResidentPeak.Max(st.resident)
	}
}

// close removes the spill directory and everything in it. Callers close
// their file handles first (the engine's deferred cleanup runs in LIFO
// order, with close deferred before the log and frontiers).
func (st *spillStore) close() {
	if st.dir != "" {
		os.RemoveAll(st.dir)
		st.dir = ""
	}
}

// logSegment is one sealed span of the key log. Resident segments keep
// their bytes in data; spilled segments hold an open file plus, where the
// platform supports it, a read-only mapped view (data aliases mm then).
type logSegment struct {
	start uint64 // global offset of the segment's first byte
	size  int
	data  []byte   // resident bytes or mapped view; nil = read through f
	f     *os.File // non-nil once spilled
	mm    []byte   // mapped view to release on close
}

// keyLog is the global append-only arena of interned keys. Appends go to a
// resident tail; full tails are sealed into segments, and once resident
// bytes exceed the budget the oldest sealed segments spill to disk,
// oldest-first (BFS lookups skew towards recently interned keys).
type keyLog struct {
	st        *spillStore
	budget    int64 // resident budget for segment data + tail; 0 = unlimited
	segSize   int
	segs      []logSegment
	nspilled  int // segs[:nspilled] are on disk
	tail      []byte
	tailStart uint64
	end       uint64 // next global offset to be assigned
	met       *obs.ExploreMetrics
}

func newKeyLog(budget int64, st *spillStore, met *obs.ExploreMetrics) *keyLog {
	segSize := defaultSegSize
	if budget > 0 {
		segSize = int(min(max(budget/8, minSegSize), maxSegSize))
	}
	l := &keyLog{st: st, budget: budget, segSize: segSize, met: met}
	l.tail = make([]byte, 0, segSize)
	l.tail = append(l.tail, 0) // pad: offset 0 is the empty-slot sentinel
	l.end = 1
	st.addResident(1)
	return l
}

// append stores one key record and returns its global offset (always > 0).
// Single-threaded: only the engine's commit pass appends.
func (l *keyLog) append(key []byte) (uint64, error) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(len(key)))
	rec := n + len(key)
	// Records never span segments: seal the tail when the record would not
	// fit. Oversized records (> segSize) get a dedicated larger segment.
	if len(l.tail)+rec > l.segSize && len(l.tail) > 0 {
		if err := l.seal(); err != nil {
			return 0, err
		}
	}
	off := l.end
	l.tail = append(l.tail, tmp[:n]...)
	l.tail = append(l.tail, key...)
	l.end += uint64(rec)
	l.st.addResident(int64(rec))
	return off, nil
}

// seal freezes the tail into a segment and spills old segments if the
// resident budget is exceeded.
func (l *keyLog) seal() error {
	if len(l.tail) == 0 {
		return nil
	}
	l.segs = append(l.segs, logSegment{start: l.tailStart, size: len(l.tail), data: l.tail})
	l.tailStart = l.end
	l.tail = make([]byte, 0, l.segSize)
	if l.budget > 0 {
		for l.st.resident > l.budget && l.nspilled < len(l.segs) {
			if err := l.spillOne(); err != nil {
				return err
			}
		}
	}
	return nil
}

// spillOne writes the oldest resident sealed segment to a spill file and
// replaces its resident bytes with a mapped view (or file reads where
// mapping is unavailable).
func (l *keyLog) spillOne() error {
	sg := &l.segs[l.nspilled]
	f, _, err := l.st.create(fmt.Sprintf("seg-%06d", l.nspilled))
	if err != nil {
		return err
	}
	if _, err := f.Write(sg.data); err != nil {
		f.Close()
		return fmt.Errorf("explore: writing spill segment: %w", err)
	}
	if mm, err := mmapFile(f, sg.size); err == nil && mm != nil {
		sg.mm = mm
		sg.data = mm
	} else {
		sg.data = nil
	}
	sg.f = f
	l.nspilled++
	l.st.addResident(-int64(sg.size))
	if l.met != nil {
		l.met.SpillSegments.Inc()
		l.met.SpillBytes.Add(int64(sg.size))
	}
	return nil
}

// spilled reports whether the record at off lives in a spilled segment
// (i.e. reading it is a disk — or mapped-page — access, which the expansion
// pass batches in sorted offset order).
func (l *keyLog) spilled(off uint64) bool {
	return l.nspilled > 0 && off < l.segs[l.nspilled-1].start+uint64(l.segs[l.nspilled-1].size)
}

// locate returns the segment holding off, or nil when off is in the tail.
func (l *keyLog) locate(off uint64) *logSegment {
	if off >= l.tailStart {
		return nil
	}
	i := sort.Search(len(l.segs), func(i int) bool {
		return l.segs[i].start+uint64(l.segs[i].size) > off
	})
	return &l.segs[i]
}

// record returns the key bytes stored at off. The result may alias resident
// log data, a mapped view, or *scratch (grown as needed); it is valid until
// the next call reusing the same scratch. Safe for concurrent readers during
// the expansion pass (the log is immutable between commit passes).
func (l *keyLog) record(off uint64, scratch *[]byte) ([]byte, error) {
	sg := l.locate(off)
	if sg == nil {
		return parseRecord(l.tail, int(off-l.tailStart))
	}
	rel := int(off - sg.start)
	if sg.data != nil {
		key, err := parseRecord(sg.data, rel)
		if err == nil && sg.f != nil && l.met != nil {
			l.met.SpillReadBytes.Add(int64(len(key)))
		}
		return key, err
	}
	// No mapped view: read the record through the file. Header first (the
	// uvarint length), then the key bytes.
	var hdr [binary.MaxVarintLen64]byte
	hn := sg.size - rel
	if hn > len(hdr) {
		hn = len(hdr)
	}
	if _, err := sg.f.ReadAt(hdr[:hn], int64(rel)); err != nil && err != io.EOF {
		return nil, fmt.Errorf("explore: reading spill segment: %w", err)
	}
	klen, w := binary.Uvarint(hdr[:hn])
	if w <= 0 {
		return nil, fmt.Errorf("explore: corrupt spill record at offset %d", off)
	}
	if int(klen) > cap(*scratch) {
		*scratch = make([]byte, int(klen))
	}
	buf := (*scratch)[:klen]
	if _, err := sg.f.ReadAt(buf, int64(rel+w)); err != nil {
		return nil, fmt.Errorf("explore: reading spill segment: %w", err)
	}
	if l.met != nil {
		l.met.SpillReadBytes.Add(int64(hn) + int64(klen))
	}
	return buf, nil
}

// parseRecord decodes the record at rel inside a segment's byte view.
func parseRecord(data []byte, rel int) ([]byte, error) {
	klen, w := binary.Uvarint(data[rel:])
	if w <= 0 || rel+w+int(klen) > len(data) {
		return nil, fmt.Errorf("explore: corrupt key-log record at %d", rel)
	}
	return data[rel+w : rel+w+int(klen)], nil
}

// close releases mapped views and file handles. The spillStore removes the
// files themselves.
func (l *keyLog) close() {
	for i := range l.segs {
		sg := &l.segs[i]
		if sg.mm != nil {
			munmap(sg.mm)
			sg.mm = nil
		}
		if sg.f != nil {
			sg.f.Close()
			sg.f = nil
		}
		sg.data = nil
	}
}

// logCursor streams the log's records in append (= dense id) order: the
// analysis phase walks ids 0..n-1 sequentially instead of holding states in
// RAM. Spilled segments without a mapped view are read back whole, once.
type logCursor struct {
	l    *keyLog
	seg  int // index into segs; len(segs) = the tail
	data []byte
	pos  int
	buf  []byte // whole-segment read-back for unmapped spilled segments
}

func (l *keyLog) cursor() *logCursor {
	c := &logCursor{l: l, seg: -1}
	c.advance()
	c.pos = 1 // skip the pad byte of the first segment
	return c
}

func (c *logCursor) advance() {
	c.seg++
	c.pos = 0
	if c.seg >= len(c.l.segs) {
		c.data = c.l.tail
		return
	}
	sg := &c.l.segs[c.seg]
	if sg.data != nil {
		c.data = sg.data
		if sg.f != nil && c.l.met != nil {
			c.l.met.SpillReadBytes.Add(int64(sg.size))
		}
		return
	}
	if cap(c.buf) < sg.size {
		c.buf = make([]byte, sg.size)
	}
	c.buf = c.buf[:sg.size]
	if _, err := sg.f.ReadAt(c.buf, 0); err != nil {
		// Surface the failure at the next record parse.
		c.data = nil
		return
	}
	if c.l.met != nil {
		c.l.met.SpillReadBytes.Add(int64(sg.size))
	}
	c.data = c.buf
}

// next returns the key bytes of the next record. The slice is valid until
// the cursor advances past the segment.
func (c *logCursor) next() ([]byte, error) {
	for c.pos >= len(c.data) {
		if c.seg >= len(c.l.segs) {
			return nil, fmt.Errorf("explore: key-log cursor past end")
		}
		c.advance()
	}
	if c.data == nil {
		return nil, fmt.Errorf("explore: reading spilled key-log segment failed")
	}
	key, err := parseRecord(c.data, c.pos)
	if err != nil {
		return nil, err
	}
	// Advance past the uvarint header + key bytes.
	_, w := binary.Uvarint(c.data[c.pos:])
	c.pos += w + len(key)
	return key, nil
}

// frontierRec is one decoded frontier entry: the state's dense id and, in
// codec mode, its key bytes (aliasing reader storage, valid for the block).
type frontierRec struct {
	id  int32
	key []byte
}

// frontier is one BFS level's worth of discovered states, written during the
// commit pass of the previous level and streamed back — in commit order —
// for the next expansion pass. Records are delta/varint encoded (ids are
// strictly increasing within a level, so deltas are ≥ 1); codec-mode records
// additionally carry uvarint(len(key)) + key bytes so expansion never has to
// re-read the key log for frontier states. Under a budget the write buffer
// overflows to one sequential spill file per level.
type frontier struct {
	st     *spillStore
	codec  bool
	budget int64 // write-buffer flush threshold; 0 = never spill
	met    *obs.ExploreMetrics
	slot   int // 0/1: which of the two ping-pong frontiers this is
	gen    int // bumped per level for unique spill file names

	// Writer state.
	buf    []byte
	count  int
	prev   int64
	f      *os.File
	fpath  string
	fbytes int64

	// Reader state.
	br     *bufio.Reader
	arena  byteArena
	readN  int
	rprev  int64
	rpos   int // position in buf once the file part is exhausted
	infile bool
}

func newFrontier(codec bool, budget int64, st *spillStore, met *obs.ExploreMetrics, slot int) *frontier {
	return &frontier{st: st, codec: codec, budget: budget, met: met, slot: slot, prev: -1}
}

// add appends one freshly interned state to the level being written.
// Single-threaded (commit pass).
func (fr *frontier) add(id int, key []byte) error {
	var tmp [binary.MaxVarintLen64]byte
	before := len(fr.buf)
	n := binary.PutUvarint(tmp[:], uint64(int64(id)-fr.prev))
	fr.prev = int64(id)
	fr.buf = append(fr.buf, tmp[:n]...)
	if fr.codec {
		n = binary.PutUvarint(tmp[:], uint64(len(key)))
		fr.buf = append(fr.buf, tmp[:n]...)
		fr.buf = append(fr.buf, key...)
	}
	fr.count++
	fr.st.addResident(int64(len(fr.buf) - before))
	if fr.budget > 0 && int64(len(fr.buf)) >= fr.budget {
		return fr.flush()
	}
	return nil
}

// flush appends the write buffer to the level's spill file.
func (fr *frontier) flush() error {
	if len(fr.buf) == 0 {
		return nil
	}
	if fr.f == nil {
		f, path, err := fr.st.create(fmt.Sprintf("frontier-%d-%d", fr.slot, fr.gen))
		if err != nil {
			return err
		}
		fr.f, fr.fpath = f, path
		if fr.met != nil {
			fr.met.FrontierSpills.Inc()
		}
	}
	if _, err := fr.f.Write(fr.buf); err != nil {
		return fmt.Errorf("explore: writing frontier spill: %w", err)
	}
	fr.fbytes += int64(len(fr.buf))
	fr.st.addResident(-int64(len(fr.buf)))
	if fr.met != nil {
		fr.met.SpillBytes.Add(int64(len(fr.buf)))
	}
	fr.buf = fr.buf[:0]
	return nil
}

// startRead switches the frontier from writing to reading: the spill file
// (if any) streams first — its records were written first — then the
// resident remainder of the buffer.
func (fr *frontier) startRead() error {
	fr.readN = 0
	fr.rprev = -1
	fr.rpos = 0
	fr.infile = fr.f != nil
	if fr.infile {
		if _, err := fr.f.Seek(0, io.SeekStart); err != nil {
			return fmt.Errorf("explore: rewinding frontier spill: %w", err)
		}
		if fr.br == nil {
			fr.br = bufio.NewReaderSize(fr.f, 64<<10)
		} else {
			fr.br.Reset(fr.f)
		}
		if fr.met != nil {
			fr.met.SpillReadBytes.Add(fr.fbytes)
		}
	}
	return nil
}

// nextBlock appends up to one block of records to blk (reusing its storage)
// and reports them. A zero-length result means the level is exhausted.
// Without a budget the whole level is one block, which preserves the all-RAM
// engine's level-at-a-time behaviour exactly.
func (fr *frontier) nextBlock(blk []frontierRec) ([]frontierRec, error) {
	fr.arena.reset()
	maxRecs, maxBytes := fr.count-fr.readN, int(^uint(0)>>1)
	if fr.budget > 0 {
		if maxRecs > spillBlockRecs {
			maxRecs = spillBlockRecs
		}
		maxBytes = spillBlockBytes
	}
	bytes := 0
	for len(blk) < maxRecs && bytes < maxBytes {
		rec, n, err := fr.readRecord()
		if err != nil {
			return nil, err
		}
		blk = append(blk, rec)
		bytes += n
	}
	return blk, nil
}

// readRecord decodes the next frontier record from the file part or the
// resident buffer, returning its approximate byte size for block bounding.
func (fr *frontier) readRecord() (frontierRec, int, error) {
	var rec frontierRec
	size := 0
	if fr.infile {
		delta, err := binary.ReadUvarint(fr.br)
		if err == io.EOF {
			fr.infile = false
			return fr.readRecord()
		}
		if err != nil {
			return rec, 0, fmt.Errorf("explore: reading frontier spill: %w", err)
		}
		fr.rprev += int64(delta)
		rec.id = int32(fr.rprev)
		size = 1
		if fr.codec {
			klen, err := binary.ReadUvarint(fr.br)
			if err != nil {
				return rec, 0, fmt.Errorf("explore: reading frontier spill: %w", err)
			}
			dst := fr.arena.grab(int(klen))
			if _, err := io.ReadFull(fr.br, dst); err != nil {
				return rec, 0, fmt.Errorf("explore: reading frontier spill: %w", err)
			}
			rec.key = dst
			size += int(klen)
		}
		fr.readN++
		return rec, size, nil
	}
	delta, w := binary.Uvarint(fr.buf[fr.rpos:])
	if w <= 0 {
		return rec, 0, fmt.Errorf("explore: corrupt frontier record")
	}
	fr.rpos += w
	fr.rprev += int64(delta)
	rec.id = int32(fr.rprev)
	size = w
	if fr.codec {
		klen, w := binary.Uvarint(fr.buf[fr.rpos:])
		if w <= 0 || fr.rpos+w+int(klen) > len(fr.buf) {
			return rec, 0, fmt.Errorf("explore: corrupt frontier record")
		}
		rec.key = fr.buf[fr.rpos+w : fr.rpos+w+int(klen)]
		fr.rpos += w + int(klen)
		size += w + int(klen)
	}
	fr.readN++
	return rec, size, nil
}

// endRead finishes the level: the spill file (if any) is closed and removed,
// and the frontier resets to writing mode for a later level.
func (fr *frontier) endRead() {
	fr.st.addResident(-int64(len(fr.buf)))
	fr.buf = fr.buf[:0]
	fr.count = 0
	fr.prev = -1
	fr.gen++
	fr.fbytes = 0
	if fr.f != nil {
		fr.f.Close()
		os.Remove(fr.fpath)
		fr.f, fr.fpath = nil, ""
	}
}

// close releases the open spill file, if any (the spillStore removes it).
func (fr *frontier) close() {
	if fr.f != nil {
		fr.f.Close()
		fr.f = nil
	}
}

// byteArena hands out stable byte slices from fixed-size chunks: chunks are
// never grown in place, so slices stay valid until reset. Reset keeps the
// chunks for reuse, which is what keeps per-level allocations flat.
type byteArena struct {
	chunks [][]byte
	cur    int
}

// grab reserves a writable slice of length n.
func (a *byteArena) grab(n int) []byte {
	for {
		if a.cur == len(a.chunks) {
			size := arenaChunkSize
			if n > size {
				size = n
			}
			a.chunks = append(a.chunks, make([]byte, 0, size))
		}
		c := a.chunks[a.cur]
		if len(c)+n <= cap(c) {
			a.chunks[a.cur] = c[:len(c)+n]
			return a.chunks[a.cur][len(c) : len(c)+n]
		}
		a.cur++
	}
}

// copyBytes copies b into the arena and returns the stable copy.
func (a *byteArena) copyBytes(b []byte) []byte {
	dst := a.grab(len(b))
	copy(dst, b)
	return dst
}

// reset recycles all chunks without freeing them.
func (a *byteArena) reset() {
	for i := range a.chunks {
		a.chunks[i] = a.chunks[i][:0]
	}
	a.cur = 0
}
