package explore

import (
	"fmt"
	"testing"

	"repro/internal/compile"
	"repro/internal/multiset"
	"repro/internal/popmachine"
	"repro/internal/popprog"
	"repro/internal/protocol"
)

// freeWalkProtocol builds a k-state protocol whose reachable set from any
// configuration is every composition of the population over the k states:
// q_i, q_j ↦ q_{i+1 mod k}, q_j for all ordered pairs. With k = 6 and
// m = 25 agents that is C(30,5) = 142506 reachable states with wide BFS
// levels — the acceptance instance for the parallel engine (≥ 10⁵ states).
func freeWalkProtocol(tb testing.TB, k int) *protocol.Protocol {
	tb.Helper()
	pb := protocol.NewBuilder(fmt.Sprintf("freewalk%d", k))
	names := make([]string, k)
	for i := range names {
		names[i] = fmt.Sprintf("q%d", i)
	}
	pb.Input(names...)
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			pb.Transition(names[i], names[j], names[(i+1)%k], names[j])
		}
	}
	pb.Accepting(names[0])
	p, err := pb.Build()
	if err != nil {
		tb.Fatal(err)
	}
	return p
}

func freeWalkInitial(b *testing.B, p *protocol.Protocol, m int64) *multiset.Multiset {
	b.Helper()
	counts := make([]int64, len(p.States))
	counts[0] = m
	c, err := p.InitialConfig(counts...)
	if err != nil {
		b.Fatal(err)
	}
	return c
}

// BenchmarkExploreProtocol is the acceptance benchmark of the parallel
// engine on a protocol system: 142506 reachable multiset configurations,
// explored by the sequential reference and by the engine at 1, 2, 4 and 8
// workers. Results are bit-identical across all variants; on a multi-core
// host the workers=4 case should run ≥2x faster than workers=1.
func BenchmarkExploreProtocol(b *testing.B) {
	const k, m = 6, 25
	p := freeWalkProtocol(b, k)
	sys := NewProtocolSystem(p)
	c := freeWalkInitial(b, p, m)
	const wantStates = 142506

	b.Run("sequential", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := Explore[*multiset.Multiset](sys, []*multiset.Multiset{c}, Options{MaxStates: 1_000_000})
			if err != nil {
				b.Fatal(err)
			}
			if res.NumStates != wantStates {
				b.Fatalf("NumStates = %d, want %d", res.NumStates, wantStates)
			}
		}
		b.ReportMetric(wantStates, "reachable-states")
	})
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := ExploreParallel[*multiset.Multiset](sys, []*multiset.Multiset{c},
					Options{MaxStates: 1_000_000, Workers: w})
				if err != nil {
					b.Fatal(err)
				}
				if res.NumStates != wantStates {
					b.Fatalf("NumStates = %d, want %d", res.NumStates, wantStates)
				}
			}
			b.ReportMetric(wantStates, "reachable-states")
		})
	}
}

// BenchmarkExploreMachine covers the population-machine system shape: the
// compiled Figure 1 machine explored from the union of every initial
// register placement of 7 agents (register-vector × pointer-valuation
// states, deeper and narrower than protocol graphs).
func BenchmarkExploreMachine(b *testing.B) {
	machine, err := compile.Compile(popprog.Figure1Program())
	if err != nil {
		b.Fatal(err)
	}
	sys := popmachine.System{M: machine}
	var initial []*popmachine.Config
	multiset.Enumerate(len(machine.Registers), 7, func(regs *multiset.Multiset) {
		cfg, err := machine.InitialConfig(regs)
		if err != nil {
			b.Fatal(err)
		}
		initial = append(initial, cfg)
	})

	b.Run("sequential", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := Explore[*popmachine.Config](sys, initial, Options{MaxStates: 1_000_000})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.NumStates), "reachable-states")
		}
	})
	for _, w := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := ExploreParallel[*popmachine.Config](sys, initial,
					Options{MaxStates: 1_000_000, Workers: w})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.NumStates), "reachable-states")
			}
		})
	}
}
