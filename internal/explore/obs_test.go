package explore

import (
	"context"
	"testing"

	"repro/internal/obs"
)

// TestExploreMetricsExact cross-checks the explorer's telemetry against the
// exploration result itself: on a deterministic chain graph the counters
// are fully predictable, so this pins them exactly rather than just
// "nonzero".
func TestExploreMetricsExact(t *testing.T) {
	const n = 64
	g := ringAfterPath{depth: n}

	m := obs.Enable()
	defer obs.Disable()
	res, err := ExploreParallel[int](g, []int{0}, Options{MaxStates: n + 10, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	snap := m.Snapshot()

	if snap.Explore.Explorations != 1 {
		t.Fatalf("Explorations = %d, want 1", snap.Explore.Explorations)
	}
	if snap.Explore.States != int64(res.NumStates) {
		t.Fatalf("States = %d, result has %d", snap.Explore.States, res.NumStates)
	}
	// Every ringAfterPath state has exactly one successor.
	if snap.Explore.Edges != int64(res.NumStates) {
		t.Fatalf("Edges = %d, want %d (one per state)", snap.Explore.Edges, res.NumStates)
	}
	// The chain keeps every BFS frontier at width 1, so the level count
	// matches the state count and the frontier histogram is all ones.
	if snap.Explore.Levels != int64(res.NumStates) {
		t.Fatalf("Levels = %d, want %d (width-1 frontiers)", snap.Explore.Levels, res.NumStates)
	}
	if snap.Explore.Frontier.Min != 1 || snap.Explore.Frontier.Max != 1 {
		t.Fatalf("Frontier min/max = %d/%d, want 1/1", snap.Explore.Frontier.Min, snap.Explore.Frontier.Max)
	}
	// Every interned state lands in exactly one shard, so shard occupancy
	// must add back up to the state count.
	var shardTotal int64
	for _, v := range snap.Explore.InternShard {
		shardTotal += v
	}
	if shardTotal != snap.Explore.States {
		t.Fatalf("interner shard occupancy sums to %d, want %d states", shardTotal, snap.Explore.States)
	}
	if snap.Explore.InternArenaBytes == 0 {
		t.Fatal("interner recorded no arena bytes")
	}
	if snap.Explore.Cancellations != 0 {
		t.Fatalf("Cancellations = %d on an uncancelled run", snap.Explore.Cancellations)
	}
	if snap.Explore.Nanos <= 0 {
		t.Fatalf("Nanos = %d, want > 0", snap.Explore.Nanos)
	}
}

// TestExploreMetricsCancellation checks a context-cancelled exploration is
// visible in the telemetry.
func TestExploreMetricsCancellation(t *testing.T) {
	m := obs.Enable()
	defer obs.Disable()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ExploreContext[int](ctx, ringAfterPath{depth: 512}, []int{0},
		Options{Workers: 2}); err == nil {
		t.Fatal("cancelled exploration returned no error")
	}
	if got := m.Snapshot().Explore.Cancellations; got != 1 {
		t.Fatalf("Cancellations = %d, want 1", got)
	}
}

// TestParallelExploreAllocsPerStateObs re-runs the engine's allocation
// guard with telemetry enabled: the observation path is atomics only and
// must fit the same 10 objects/state budget as the disabled path.
func TestParallelExploreAllocsPerStateObs(t *testing.T) {
	obs.Enable()
	defer obs.Disable()
	const n = 512
	g := ringAfterPath{depth: n}
	allocs := testing.AllocsPerRun(10, func() {
		res, err := ExploreParallel[int](g, []int{0}, Options{MaxStates: n + 10, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		if res.NumStates != n+3 {
			t.Fatalf("NumStates = %d", res.NumStates)
		}
	})
	perState := allocs / float64(n)
	if perState > 10 {
		t.Fatalf("ExploreParallel with telemetry allocates %.1f objects/state (total %.0f), budget 10", perState, allocs)
	}
}

// BenchmarkExploreParallelObs measures the engine with telemetry off and
// on; the "off" case guards the disabled-path overhead of the
// instrumentation (a captured-nil check per observation site).
func BenchmarkExploreParallelObs(b *testing.B) {
	for _, mode := range []struct {
		name    string
		enabled bool
	}{{"off", false}, {"on", true}} {
		b.Run(mode.name, func(b *testing.B) {
			if mode.enabled {
				obs.Enable()
				defer obs.Disable()
			}
			const n = 2048
			g := ringAfterPath{depth: n}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ExploreParallel[int](g, []int{0}, Options{MaxStates: n + 10, Workers: 2}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
