package explore

import (
	"testing"
)

// TestExploreAllocsPerState is the allocation regression guard for the
// dense-[]bool visited tracking in Explore: ids are dense, so expansion
// bookkeeping must cost O(1) amortised slice appends, not per-state map
// inserts. The budget is per explored state, with headroom for the
// per-state key string and queue/edge growth; reintroducing a map (or any
// per-state heap structure) on the BFS hot path trips it.
func TestExploreAllocsPerState(t *testing.T) {
	const n = 512
	g := ringAfterPath{depth: n}
	allocs := testing.AllocsPerRun(10, func() {
		res, err := Explore[int](g, []int{0}, Options{MaxStates: n + 10})
		if err != nil {
			t.Fatal(err)
		}
		if res.NumStates != n+3 {
			t.Fatalf("NumStates = %d", res.NumStates)
		}
	})
	perState := allocs / float64(n)
	if perState > 8 {
		t.Fatalf("Explore allocates %.1f objects/state (total %.0f), budget 8", perState, allocs)
	}
}

// TestParallelExploreAllocsPerState holds the engine to the same standard:
// binary interning must not allocate a string per visited state. The chain
// shape keeps every frontier at width 1, so this measures the engine's
// per-state floor, not goroutine machinery.
func TestParallelExploreAllocsPerState(t *testing.T) {
	const n = 512
	g := ringAfterPath{depth: n}
	allocs := testing.AllocsPerRun(10, func() {
		res, err := ExploreParallel[int](g, []int{0}, Options{MaxStates: n + 10, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		if res.NumStates != n+3 {
			t.Fatalf("NumStates = %d", res.NumStates)
		}
	})
	perState := allocs / float64(n)
	if perState > 10 {
		t.Fatalf("ExploreParallel allocates %.1f objects/state (total %.0f), budget 10", perState, allocs)
	}
}
