package explore

import (
	"fmt"
	"math/rand"
	"testing"
)

// reachClosure computes the full reachability matrix by BFS from every node:
// reach[u][v] iff there is a (possibly empty) path u →* v. Deliberately
// naive — it is the oracle, not the implementation.
func reachClosure(n int, edges [][]int) [][]bool {
	reach := make([][]bool, n)
	for u := 0; u < n; u++ {
		reach[u] = make([]bool, n)
		reach[u][u] = true
		queue := []int{u}
		for len(queue) > 0 {
			x := queue[0]
			queue = queue[1:]
			for _, v := range edges[x] {
				if !reach[u][v] {
					reach[u][v] = true
					queue = append(queue, v)
				}
			}
		}
	}
	return reach
}

// checkTarjanAgainstOracle verifies, for one digraph, that tarjanSCC's
// partition equals the mutual-reachability relation and that the derived
// bottom flags equal the oracle's "everything reachable can reach back".
func checkTarjanAgainstOracle(t *testing.T, label string, n int, edges [][]int) {
	t.Helper()
	comp := tarjanSCC(n, edges)
	reach := reachClosure(n, edges)
	for u := 0; u < n; u++ {
		if comp[u] < 0 {
			t.Fatalf("%s: node %d has no component", label, u)
		}
		for v := 0; v < n; v++ {
			mutual := reach[u][v] && reach[v][u]
			if (comp[u] == comp[v]) != mutual {
				t.Fatalf("%s: comp[%d]=%d comp[%d]=%d but mutual reachability is %v",
					label, u, comp[u], v, comp[v], mutual)
			}
		}
	}
	numComp := 0
	for _, c := range comp {
		if c+1 > numComp {
			numComp = c + 1
		}
	}
	isBottom := make([]bool, numComp)
	for i := range isBottom {
		isBottom[i] = true
	}
	for u, outs := range edges {
		for _, v := range outs {
			if comp[u] != comp[v] {
				isBottom[comp[u]] = false
			}
		}
	}
	for u := 0; u < n; u++ {
		oracleBottom := true
		for v := 0; v < n; v++ {
			if reach[u][v] && !reach[v][u] {
				oracleBottom = false
				break
			}
		}
		if isBottom[comp[u]] != oracleBottom {
			t.Fatalf("%s: node %d bottom flag %v, oracle says %v",
				label, u, isBottom[comp[u]], oracleBottom)
		}
	}
}

// TestTarjanSCCAgainstOracle property-tests tarjanSCC on randomized
// digraphs across densities, plus the adversarial shapes called out in the
// component's history: self-loops, deep chains (recursion busters), and
// graphs with many bottom SCCs.
func TestTarjanSCCAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(20230806))

	// Random digraphs across edge densities, with self-loops allowed.
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(40)
		p := []float64{0.02, 0.05, 0.1, 0.3}[trial%4]
		edges := make([][]int, n)
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if rng.Float64() < p {
					edges[u] = append(edges[u], v) // u == v ⇒ self-loop
				}
			}
		}
		checkTarjanAgainstOracle(t, fmt.Sprintf("random trial %d (n=%d p=%.2f)", trial, n, p), n, edges)
	}

	// Deep chain with sparse back edges: long lowlink propagation paths.
	{
		const n = 400
		edges := make([][]int, n)
		for u := 0; u+1 < n; u++ {
			edges[u] = append(edges[u], u+1)
		}
		for i := 0; i < 10; i++ {
			hi := 1 + rng.Intn(n-1)
			edges[hi] = append(edges[hi], rng.Intn(hi))
		}
		checkTarjanAgainstOracle(t, "deep chain with back edges", n, edges)
	}

	// Multi-bottom star: a root feeding many disjoint cycles, every cycle a
	// bottom SCC, the root a singleton non-bottom component.
	{
		const cycles, cycleLen = 7, 3
		n := 1 + cycles*cycleLen
		edges := make([][]int, n)
		for c := 0; c < cycles; c++ {
			base := 1 + c*cycleLen
			edges[0] = append(edges[0], base)
			for i := 0; i < cycleLen; i++ {
				edges[base+i] = append(edges[base+i], base+(i+1)%cycleLen)
			}
		}
		checkTarjanAgainstOracle(t, "multi-bottom star", n, edges)
	}

	// All self-loops, no other edges: n singleton bottom SCCs.
	{
		const n = 12
		edges := make([][]int, n)
		for u := 0; u < n; u++ {
			edges[u] = []int{u}
		}
		checkTarjanAgainstOracle(t, "self-loops only", n, edges)
	}

	// Empty graph and single node.
	checkTarjanAgainstOracle(t, "empty", 0, nil)
	checkTarjanAgainstOracle(t, "single node", 1, [][]int{nil})
}
