package explore

import (
	"bytes"
	"sync"

	"repro/internal/multiset"
	"repro/internal/obs"
)

// The sharded state interner maps compact binary state keys to dense integer
// ids. Keys are stored once, appended to the global key log (which seals
// into segments and spills to disk under a memory budget); the in-RAM part
// of the interner is per-shard open-addressing tables of fixed-width
// entries — a log offset, a 32-bit hash fingerprint and the dense id, 16
// bytes per state regardless of key size. Lookups probe by fingerprint and
// confirm against the full key bytes read from the log, so false fingerprint
// matches cost one extra read, never a wrong id.
//
// Shards are selected by the low 6 bits of the 64-bit FNV-1a key hash and
// probe slots by the high 32 bits (the fingerprint), so both are pure
// functions of the key — stable across runs, worker counts and budgets.
//
// Concurrency contract: the parallel engine alternates between a read-only
// expansion pass (many workers calling lookupExpand) and a single-threaded
// commit pass (one goroutine calling insert/lookup). The striped RWMutexes
// make each shard individually safe under any interleaving, so the interner
// stays correct even if a future scheduler overlaps the phases.

const (
	internShardBits = 6
	internShardCnt  = 1 << internShardBits

	// internInitialSlots is each shard's initial table size; tables grow by
	// doubling at 3/4 load.
	internInitialSlots = 16
)

// internEntry locates one interned key: off is the key-log offset of its
// record (0 = empty slot; the log's leading pad byte guarantees no record
// lives at offset 0), fp the hash fingerprint, id the dense state id.
type internEntry struct {
	off uint64
	fp  uint32
	id  int32
}

type internShard struct {
	mu      sync.RWMutex
	entries []internEntry // open addressing; len is a power of two
	count   int
}

type interner struct {
	shards [internShardCnt]internShard
	log    *keyLog
	// met is the telemetry group captured at construction (nil when
	// disabled): shard occupancy, key-log growth and hash collisions are
	// observed on insert, which the commit pass runs single-threaded.
	met *obs.ExploreMetrics
	// scratch backs key reads on the single-threaded lookup path (commit
	// pass); concurrent expansion lookups carry their own scratch.
	scratch []byte
}

// newInterner builds an interner over a fresh key log. budget is the
// resident-byte budget of the log tier (0 = stay in RAM); st owns any spill
// files.
func newInterner(budget int64, st *spillStore, met *obs.ExploreMetrics) *interner {
	in := &interner{log: newKeyLog(budget, st, met), met: met}
	for i := range in.shards {
		in.shards[i].entries = make([]internEntry, internInitialSlots)
	}
	return in
}

// hashKey is the interner's hash function, exposed through a helper so the
// fuzz harness exercises exactly the production code path.
func hashKey(key []byte) uint64 { return multiset.Hash64(key) }

// shardIndex returns the shard a hash maps to.
func shardIndex(h uint64) int { return int(h & (internShardCnt - 1)) }

// fingerprint is the 32-bit probe fingerprint of a hash: the high bits,
// independent of the shard-selecting low bits.
func fingerprint(h uint64) uint32 { return uint32(h >> 32) }

// close releases the key log's spill resources.
func (in *interner) close() { in.log.close() }

// lookup returns the id interned for key, if any. Single-threaded contract:
// it shares the interner's read scratch, so only the commit pass (or other
// serial callers, like the fuzz harness) may use it; the expansion pass uses
// lookupExpand.
func (in *interner) lookup(h uint64, key []byte) (int, bool) {
	sh := &in.shards[shardIndex(h)]
	fp := fingerprint(h)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	mask := uint32(len(sh.entries) - 1)
	for slot := fp & mask; ; slot = (slot + 1) & mask {
		e := sh.entries[slot]
		if e.off == 0 {
			return 0, false
		}
		if e.fp != fp {
			continue
		}
		rec, err := in.log.record(e.off, &in.scratch)
		if err == nil && bytes.Equal(rec, key) {
			return int(e.id), true
		}
	}
}

// deferredLookup is an expansion-pass lookup whose first fingerprint match
// points into a spilled segment: the confirming read is deferred so the
// worker can batch all of a chunk's spilled reads in sorted offset order.
type deferredLookup struct {
	off  uint64 // candidate record offset to confirm against
	hash uint64
	slot uint32 // probe slot of the candidate (to resume on mismatch)
	id   int32  // candidate's dense id, valid if the confirm succeeds
	i, j int32  // perState[i][j] is the pending record to resolve
}

// lookupExpand is the expansion-pass lookup: like lookup, but when the first
// fingerprint match needs a spilled-segment read it defers the confirmation
// into d (to be resolved by resolveDeferred) and reports deferred = true.
// Resident confirms are done inline. scratch backs unmapped spilled reads.
func (in *interner) lookupExpand(h uint64, key []byte, scratch *[]byte,
	d *[]deferredLookup, i, j int32) (id int, ok, deferred bool) {
	sh := &in.shards[shardIndex(h)]
	fp := fingerprint(h)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	mask := uint32(len(sh.entries) - 1)
	for slot := fp & mask; ; slot = (slot + 1) & mask {
		e := sh.entries[slot]
		if e.off == 0 {
			return 0, false, false
		}
		if e.fp != fp {
			continue
		}
		if in.log.spilled(e.off) {
			*d = append(*d, deferredLookup{off: e.off, hash: h, slot: slot, id: e.id, i: i, j: j})
			return 0, false, true
		}
		rec, err := in.log.record(e.off, scratch)
		if err == nil && bytes.Equal(rec, key) {
			return int(e.id), true, false
		}
	}
}

// resumeLookup continues a probe sequence past a failed deferred confirm:
// from slot+1 onward, reading spilled records synchronously (fingerprint
// mismatches past the first match are ~2⁻³² rare, so this path is cold).
func (in *interner) resumeLookup(h uint64, key []byte, from uint32, scratch *[]byte) (int, bool) {
	sh := &in.shards[shardIndex(h)]
	fp := fingerprint(h)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	mask := uint32(len(sh.entries) - 1)
	for slot := (from + 1) & mask; ; slot = (slot + 1) & mask {
		e := sh.entries[slot]
		if e.off == 0 {
			return 0, false
		}
		if e.fp != fp {
			continue
		}
		rec, err := in.log.record(e.off, scratch)
		if err == nil && bytes.Equal(rec, key) {
			return int(e.id), true
		}
	}
}

// insert interns key with the given id, appending the key to the log. The
// caller must have established that key is absent (ids are dense, assigned
// in canonical BFS order by the single-threaded commit pass). The key bytes
// are copied into the log; the caller may reuse its buffer.
func (in *interner) insert(h uint64, key []byte, id int) error {
	off, err := in.log.append(key)
	if err != nil {
		return err
	}
	shard := shardIndex(h)
	sh := &in.shards[shard]
	fp := fingerprint(h)
	sh.mu.Lock()
	if (sh.count+1)*4 > len(sh.entries)*3 {
		sh.grow()
	}
	mask := uint32(len(sh.entries) - 1)
	collision := false
	slot := fp & mask
	for sh.entries[slot].off != 0 {
		if sh.entries[slot].fp == fp {
			collision = true // same fingerprint, necessarily a different key
		}
		slot = (slot + 1) & mask
	}
	sh.entries[slot] = internEntry{off: off, fp: fp, id: int32(id)}
	sh.count++
	sh.mu.Unlock()
	if in.met != nil {
		in.met.InternShard.Add(shard, 1)
		in.met.InternArenaBytes.Add(int64(len(key)))
		if collision {
			in.met.InternCollisions.Inc()
		}
	}
	return nil
}

// grow doubles the shard's table, re-placing entries by fingerprint. Caller
// holds the write lock.
func (sh *internShard) grow() {
	old := sh.entries
	sh.entries = make([]internEntry, 2*len(old))
	mask := uint32(len(sh.entries) - 1)
	for _, e := range old {
		if e.off == 0 {
			continue
		}
		slot := e.fp & mask
		for sh.entries[slot].off != 0 {
			slot = (slot + 1) & mask
		}
		sh.entries[slot] = e
	}
}
