package explore

import (
	"bytes"
	"sync"

	"repro/internal/multiset"
	"repro/internal/obs"
)

// The sharded state interner maps compact binary state keys to dense integer
// ids. It replaces the single string-keyed map of the sequential checker:
// keys are stored once, concatenated in per-shard byte arenas, and looked up
// through per-shard hash tables keyed by the 64-bit FNV-1a hash of the key
// bytes, with full-key comparison resolving hash collisions. Shards are
// selected by the low bits of the hash, so assignment is a pure function of
// the key — stable across runs and worker counts.
//
// Concurrency contract: the parallel engine alternates between a read-only
// expansion pass (many workers calling lookup) and a single-threaded commit
// pass (one goroutine calling insert). The striped RWMutexes make each shard
// individually safe under any interleaving, so the interner stays correct
// even if a future scheduler overlaps the phases.

const (
	internShardBits = 6
	internShardCnt  = 1 << internShardBits
)

// internEntry locates one interned key in its shard's arena.
type internEntry struct {
	off, end uint32 // key bytes are shard.arena[off:end]
	id       int32  // dense state id
}

type internShard struct {
	mu    sync.RWMutex
	table map[uint64][]internEntry
	arena []byte
}

type interner struct {
	shards [internShardCnt]internShard
	// met is the telemetry group captured at construction (nil when
	// disabled): shard occupancy, arena growth and hash collisions are
	// observed on insert, which the commit pass runs single-threaded.
	met *obs.ExploreMetrics
}

func newInterner() *interner {
	in := &interner{met: obs.Explore()}
	for i := range in.shards {
		in.shards[i].table = make(map[uint64][]internEntry)
	}
	return in
}

// hashKey is the interner's hash function, exposed through a helper so the
// fuzz harness exercises exactly the production code path.
func hashKey(key []byte) uint64 { return multiset.Hash64(key) }

// shardIndex returns the shard a hash maps to.
func shardIndex(h uint64) int { return int(h & (internShardCnt - 1)) }

// lookup returns the id interned for key, if any. Safe for concurrent use
// with other lookups; safe with a concurrent insert via the shard lock.
func (in *interner) lookup(h uint64, key []byte) (int, bool) {
	sh := &in.shards[shardIndex(h)]
	sh.mu.RLock()
	for _, e := range sh.table[h] {
		if bytes.Equal(sh.arena[e.off:e.end], key) {
			sh.mu.RUnlock()
			return int(e.id), true
		}
	}
	sh.mu.RUnlock()
	return 0, false
}

// insert interns key with the given id. The caller must have established
// that key is absent (ids are dense, assigned in canonical BFS order by the
// single-threaded commit pass). The key bytes are copied into the shard
// arena; the caller may reuse its buffer.
func (in *interner) insert(h uint64, key []byte, id int) {
	shard := shardIndex(h)
	sh := &in.shards[shard]
	sh.mu.Lock()
	collision := len(sh.table[h]) != 0 // same 64-bit hash, different key
	off := uint32(len(sh.arena))
	sh.arena = append(sh.arena, key...)
	sh.table[h] = append(sh.table[h], internEntry{off: off, end: off + uint32(len(key)), id: int32(id)})
	sh.mu.Unlock()
	if in.met != nil {
		in.met.InternShard.Add(shard, 1)
		in.met.InternArenaBytes.Add(int64(len(key)))
		if collision {
			in.met.InternCollisions.Inc()
		}
	}
}
