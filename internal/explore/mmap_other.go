//go:build !linux

package explore

import "os"

// mmapFile reports no mapping support: spilled segments fall back to
// positional file reads (os.File.ReadAt), which keeps the engine portable
// without platform-specific mapping code beyond linux.
func mmapFile(f *os.File, size int) ([]byte, error) {
	return nil, nil
}

func munmap(b []byte) {}
