package explore

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/multiset"
	"repro/internal/protocol"
)

// ProtocolSystem adapts a population protocol's configuration graph to the
// System interface: states are configurations (multisets over Q), the step
// relation is single-transition firing, and outputs are consensus outputs.
// Use NewProtocolSystem so successor queries go through a pair-indexed
// stepper (O(support²) rather than O(|δ|) per state).
type ProtocolSystem struct {
	P       *protocol.Protocol
	stepper *protocol.Stepper
}

var _ System[*multiset.Multiset] = ProtocolSystem{}

// NewProtocolSystem builds an indexed adapter for p.
func NewProtocolSystem(p *protocol.Protocol) ProtocolSystem {
	return ProtocolSystem{P: p, stepper: protocol.NewStepper(p)}
}

// Key implements System.
func (s ProtocolSystem) Key(c *multiset.Multiset) string { return c.Key() }

// AppendKey implements AppendKeySystem: the parallel engine interns
// configurations through the compact binary encoding instead of
// materialising a string per visited state.
func (s ProtocolSystem) AppendKey(dst []byte, c *multiset.Multiset) []byte {
	return c.AppendKey(dst)
}

// DecodeKey implements KeyDecoderSystem: configurations are rebuilt from
// their varint count vectors, which lets the engine run out-of-core —
// frontier and interned configurations can live on disk instead of in a
// states slice. prev is reused as the decode target when non-nil.
func (s ProtocolSystem) DecodeKey(prev *multiset.Multiset, key []byte) (*multiset.Multiset, error) {
	if prev == nil {
		return multiset.FromKey(key, len(s.P.States))
	}
	if err := prev.SetFromKey(key); err != nil {
		return nil, err
	}
	return prev, nil
}

// Successors implements System.
func (s ProtocolSystem) Successors(c *multiset.Multiset) []*multiset.Multiset {
	if s.stepper != nil {
		return s.stepper.Successors(c)
	}
	return s.P.Successors(c)
}

// Output implements System.
func (s ProtocolSystem) Output(c *multiset.Multiset) protocol.Output {
	return s.P.OutputOf(c)
}

// CheckConfiguration verifies that every fair run of p from configuration c
// stabilises to `want`. It returns the exploration result for diagnostics.
func CheckConfiguration(p *protocol.Protocol, c *multiset.Multiset, want bool, opts Options) (*Result, error) {
	res, err := ExploreParallel[*multiset.Multiset](NewProtocolSystem(p), []*multiset.Multiset{c.Clone()}, opts)
	if err != nil {
		return nil, err
	}
	if !res.StabilisesTo(want) {
		return res, fmt.Errorf(
			"protocol %q from %s: fair runs do not all stabilise to %v (bottom SCC outcomes %v, witnesses %q)",
			p.Name, c.Format(p.States), want, res.Outcomes, res.WitnessKeys)
	}
	return res, nil
}

// checkDecidesSize verifies pred for every initial configuration of one
// population size, using the parallel engine (which degrades to the inline
// sequential path for the narrow frontiers of small instances).
func checkDecidesSize(ctx context.Context, sys ProtocolSystem, pred protocol.Predicate, m int64, opts Options) error {
	p := sys.P
	var checkErr error
	multiset.Enumerate(len(p.Input), m, func(inputCounts *multiset.Multiset) {
		if checkErr != nil {
			return
		}
		c, err := p.InitialConfig(inputCounts.Counts()...)
		if err != nil {
			checkErr = err
			return
		}
		want := pred(p.InputCounts(c))
		res, err := ExploreContext[*multiset.Multiset](ctx, sys, []*multiset.Multiset{c}, opts)
		if err != nil {
			checkErr = fmt.Errorf("size %d: %w", m, err)
			return
		}
		if !res.StabilisesTo(want) {
			checkErr = fmt.Errorf(
				"size %d: protocol %q from %s: fair runs do not all stabilise to %v (outcomes %v)",
				m, p.Name, c.Format(p.States), want, res.Outcomes)
		}
	})
	return checkErr
}

// CheckDecides verifies that p decides pred on every initial configuration
// of every population size in [minAgents, maxAgents]. It is the exact
// counterpart of the paper's "PP decides φ" (§3) restricted to a finite
// range of sizes.
func CheckDecides(p *protocol.Protocol, pred protocol.Predicate, minAgents, maxAgents int64, opts Options) error {
	if minAgents < 1 {
		return fmt.Errorf("explore: population size must be ≥ 1, got %d", minAgents)
	}
	sys := NewProtocolSystem(p)
	for m := minAgents; m <= maxAgents; m++ {
		if err := checkDecidesSize(context.Background(), sys, pred, m, opts); err != nil {
			return err
		}
	}
	return nil
}

// CheckDecidesParallel is CheckDecides with the per-size checks fanned out
// over `workers` goroutines. The protocol's stepper is shared read-only;
// each worker explores its own sizes. The first failure wins: it cancels
// the in-flight explorations of the other workers (they abort at their next
// level barrier), and all workers are awaited before returning.
//
// Each per-configuration exploration runs with one engine worker unless
// opts.Workers says otherwise — the size-level fan-out already saturates the
// CPUs, and the instances here are small; use ExploreContext directly with
// Workers > 1 for a single large instance.
func CheckDecidesParallel(p *protocol.Protocol, pred protocol.Predicate, minAgents, maxAgents int64, workers int, opts Options) error {
	if minAgents < 1 {
		return fmt.Errorf("explore: population size must be ≥ 1, got %d", minAgents)
	}
	if workers < 1 {
		workers = 1
	}
	if opts.Workers <= 0 {
		opts.Workers = 1
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sys := NewProtocolSystem(p)
	sizes := make(chan int64)
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for m := range sizes {
				if err := checkDecidesSize(ctx, sys, pred, m, opts); err != nil {
					// A worker whose exploration was aborted by another
					// worker's failure has nothing to report.
					if !errors.Is(err, context.Canceled) {
						errs <- err
						cancel()
					}
					return
				}
			}
		}()
	}
	for m := minAgents; m <= maxAgents; m++ {
		select {
		case err := <-errs:
			close(sizes)
			wg.Wait()
			return err
		case sizes <- m:
		}
	}
	close(sizes)
	wg.Wait()
	select {
	case err := <-errs:
		return err
	default:
		return nil
	}
}
