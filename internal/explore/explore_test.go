package explore

import (
	"errors"
	"strconv"
	"testing"

	"repro/internal/protocol"
)

// graphSystem is a hand-built transition system for testing the SCC and
// fairness analysis directly.
type graphSystem struct {
	succ map[int][]int
	out  map[int]protocol.Output
}

var _ System[int] = graphSystem{}

func (g graphSystem) Key(s int) string { return strconv.Itoa(s) }

func (g graphSystem) Successors(s int) []int { return g.succ[s] }

func (g graphSystem) Output(s int) protocol.Output {
	if o, ok := g.out[s]; ok {
		return o
	}
	return protocol.OutputMixed
}

func TestExploreSingleBottomSCC(t *testing.T) {
	// 0 → 1 → 2 ⇄ 3, both 2 and 3 accepting.
	g := graphSystem{
		succ: map[int][]int{0: {1}, 1: {2}, 2: {3}, 3: {2}},
		out:  map[int]protocol.Output{2: protocol.OutputTrue, 3: protocol.OutputTrue},
	}
	res, err := Explore[int](g, []int{0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumStates != 4 {
		t.Fatalf("NumStates = %d, want 4", res.NumStates)
	}
	if res.NumBottomSCCs != 1 {
		t.Fatalf("NumBottomSCCs = %d, want 1", res.NumBottomSCCs)
	}
	if !res.StabilisesTo(true) {
		t.Fatalf("expected stabilisation to true, outcomes %v", res.Outcomes)
	}
	if res.Consensus() != protocol.OutputTrue {
		t.Fatalf("Consensus = %v", res.Consensus())
	}
}

func TestExploreTwoBottomSCCsDisagree(t *testing.T) {
	// 0 branches into two terminal self-loop states with opposite outputs.
	g := graphSystem{
		succ: map[int][]int{0: {1, 2}, 1: {1}, 2: {2}},
		out: map[int]protocol.Output{
			1: protocol.OutputTrue,
			2: protocol.OutputFalse,
		},
	}
	res, err := Explore[int](g, []int{0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumBottomSCCs != 2 {
		t.Fatalf("NumBottomSCCs = %d, want 2", res.NumBottomSCCs)
	}
	if res.StabilisesTo(true) || res.StabilisesTo(false) {
		t.Fatal("disagreeing bottom SCCs must not stabilise uniformly")
	}
	if res.Consensus() != protocol.OutputMixed {
		t.Fatalf("Consensus = %v, want mixed", res.Consensus())
	}
}

func TestExploreMixedBottomSCCNeverStabilises(t *testing.T) {
	// A single bottom SCC oscillating between outputs true and false: a fair
	// run trapped there never stabilises.
	g := graphSystem{
		succ: map[int][]int{0: {1}, 1: {0}},
		out: map[int]protocol.Output{
			0: protocol.OutputTrue,
			1: protocol.OutputFalse,
		},
	}
	res, err := Explore[int](g, []int{0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumBottomSCCs != 1 {
		t.Fatalf("NumBottomSCCs = %d, want 1", res.NumBottomSCCs)
	}
	if res.Outcomes[0] != protocol.OutputMixed {
		t.Fatalf("outcome = %v, want mixed", res.Outcomes[0])
	}
}

func TestExploreNonBottomOutputsIgnored(t *testing.T) {
	// The transient state 0 has output false, but the only bottom SCC is
	// all-true: every fair run still stabilises to true.
	g := graphSystem{
		succ: map[int][]int{0: {1}, 1: {1}},
		out: map[int]protocol.Output{
			0: protocol.OutputFalse,
			1: protocol.OutputTrue,
		},
	}
	res, err := Explore[int](g, []int{0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.StabilisesTo(true) {
		t.Fatalf("expected true, outcomes %v", res.Outcomes)
	}
}

func TestExploreMultipleInitialStates(t *testing.T) {
	g := graphSystem{
		succ: map[int][]int{0: {2}, 1: {2}, 2: {2}},
		out:  map[int]protocol.Output{2: protocol.OutputFalse},
	}
	res, err := Explore[int](g, []int{0, 1, 0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumStates != 3 {
		t.Fatalf("NumStates = %d, want 3", res.NumStates)
	}
	if !res.StabilisesTo(false) {
		t.Fatalf("outcomes %v", res.Outcomes)
	}
}

func TestExploreStateLimit(t *testing.T) {
	// An infinite chain 0 → 1 → 2 → ... must hit the state limit.
	g := chainSystem{}
	_, err := Explore[int](g, []int{0}, Options{MaxStates: 100})
	if !errors.Is(err, ErrStateLimit) {
		t.Fatalf("err = %v, want ErrStateLimit", err)
	}
}

type chainSystem struct{}

func (chainSystem) Key(s int) string           { return strconv.Itoa(s) }
func (chainSystem) Successors(s int) []int     { return []int{s + 1} }
func (chainSystem) Output(int) protocol.Output { return protocol.OutputFalse }

func TestExploreLargeCycleIterativeTarjan(t *testing.T) {
	// A long path ending in a cycle exercises the iterative Tarjan on a
	// graph deep enough to overflow a naive recursion.
	const depth = 200000
	g := ringAfterPath{depth: depth}
	res, err := Explore[int](g, []int{0}, Options{MaxStates: depth + 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumBottomSCCs != 1 {
		t.Fatalf("NumBottomSCCs = %d, want 1", res.NumBottomSCCs)
	}
	if !res.StabilisesTo(true) {
		t.Fatalf("outcomes %v", res.Outcomes)
	}
}

type ringAfterPath struct{ depth int }

func (r ringAfterPath) Key(s int) string { return strconv.Itoa(s) }

func (r ringAfterPath) Successors(s int) []int {
	if s < r.depth {
		return []int{s + 1}
	}
	// Three-cycle at the end: depth → depth+1 → depth+2 → depth.
	if s < r.depth+2 {
		return []int{s + 1}
	}
	return []int{r.depth}
}

func (r ringAfterPath) Output(s int) protocol.Output {
	if s >= r.depth {
		return protocol.OutputTrue
	}
	return protocol.OutputFalse
}

// --- protocol-level checks ---

func buildMajority(t *testing.T) *protocol.Protocol {
	t.Helper()
	b := protocol.NewBuilder("majority")
	b.Input("X", "Y")
	b.Transition("X", "Y", "x", "x")
	b.Transition("X", "y", "X", "x")
	b.Transition("Y", "x", "Y", "y")
	b.Transition("x", "y", "x", "x") // tie cleanup: weak accept converts weak reject
	b.Accepting("X", "x")
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCheckDecidesMajorityExact(t *testing.T) {
	p := buildMajority(t)
	pred := func(in []int64) bool { return in[0] >= in[1] }
	if err := CheckDecides(p, pred, 1, 6, Options{}); err != nil {
		t.Fatalf("majority fails exact verification: %v", err)
	}
}

func TestCheckConfigurationDetectsWrongExpectation(t *testing.T) {
	p := buildMajority(t)
	c, err := p.InitialConfig(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Majority holds, so expecting false must fail.
	if _, err := CheckConfiguration(p, c, false, Options{}); err == nil {
		t.Fatal("CheckConfiguration accepted a wrong expected output")
	}
}

func TestCheckDecidesCatchesBrokenProtocol(t *testing.T) {
	// "Broken majority": missing the Y,x ↦ Y,y transition, so a rejecting
	// population can be converted to accepting. Must be caught.
	b := protocol.NewBuilder("broken")
	b.Input("X", "Y")
	b.Transition("X", "Y", "x", "x")
	b.Transition("X", "y", "X", "x")
	b.Accepting("X", "x")
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	pred := func(in []int64) bool { return in[0] >= in[1] }
	if err := CheckDecides(p, pred, 1, 5, Options{}); err == nil {
		t.Fatal("exact checker passed a protocol that does not decide majority")
	}
}

func TestCheckDecidesRejectsZeroPopulation(t *testing.T) {
	p := buildMajority(t)
	pred := func(in []int64) bool { return true }
	if err := CheckDecides(p, pred, 0, 3, Options{}); err == nil {
		t.Fatal("CheckDecides accepted minAgents = 0")
	}
}

func TestProtocolSystemOutputs(t *testing.T) {
	p := buildMajority(t)
	sys := ProtocolSystem{P: p}
	c, _ := p.InitialConfig(1, 1)
	if sys.Output(c) != protocol.OutputMixed {
		t.Fatal("mixed configuration misreported")
	}
	if sys.Key(c) == "" {
		t.Fatal("empty key")
	}
	if len(sys.Successors(c)) == 0 {
		t.Fatal("expected successors from X+Y")
	}
}
