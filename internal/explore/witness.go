package explore

import (
	"fmt"
)

// Witness finds a shortest path (BFS) from one of the initial states to a
// state satisfying `goal`, up to the state limit. It returns the states
// along the path, including both endpoints, or an error if no such state is
// reachable. It is the counterexample extractor: when a verification fails
// (a bottom SCC with the wrong output exists), Witness produces a concrete
// execution leading into trouble, which is vastly more useful for debugging
// a protocol than the bare verdict.
func Witness[S any](sys System[S], initial []S, goal func(S) bool, opts Options) ([]S, error) {
	limit := opts.maxStates()
	ids := make(map[string]int)
	var states []S
	parent := make(map[int]int)

	intern := func(s S) (int, bool, error) {
		k := sys.Key(s)
		if id, ok := ids[k]; ok {
			return id, false, nil
		}
		if len(states) >= limit {
			return 0, false, fmt.Errorf("%w (limit %d)", ErrStateLimit, limit)
		}
		id := len(states)
		ids[k] = id
		states = append(states, s)
		return id, true, nil
	}

	buildPath := func(id int) []S {
		var rev []int
		for cur := id; ; {
			rev = append(rev, cur)
			p, ok := parent[cur]
			if !ok {
				break
			}
			cur = p
		}
		path := make([]S, len(rev))
		for i := range rev {
			path[i] = states[rev[len(rev)-1-i]]
		}
		return path
	}

	var queue []int
	for _, s := range initial {
		id, fresh, err := intern(s)
		if err != nil {
			return nil, err
		}
		if !fresh {
			continue
		}
		if goal(s) {
			return buildPath(id), nil
		}
		queue = append(queue, id)
	}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		for _, next := range sys.Successors(states[id]) {
			nid, fresh, err := intern(next)
			if err != nil {
				return nil, err
			}
			if !fresh {
				continue
			}
			parent[nid] = id
			if goal(next) {
				return buildPath(nid), nil
			}
			queue = append(queue, nid)
		}
	}
	return nil, fmt.Errorf("explore: no reachable state satisfies the goal (%d states searched)", len(states))
}
