//go:build linux

package explore

import (
	"os"
	"syscall"
)

// mmapFile maps size bytes of f read-only. Spilled key-log segments are
// immutable once written, so a shared read-only mapping gives the lookup
// path zero-copy access while letting the kernel reclaim the pages under
// memory pressure — which is the point of spilling.
func mmapFile(f *os.File, size int) ([]byte, error) {
	if size == 0 {
		return nil, nil
	}
	return syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
}

func munmap(b []byte) {
	if len(b) > 0 {
		syscall.Munmap(b)
	}
}
