package experiments

import (
	"strconv"
	"testing"
)

func TestElectionCostGrows(t *testing.T) {
	tbl, err := Election([]int64{1, 16}, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("%d rows", len(tbl.Rows))
	}
	small, _ := strconv.ParseFloat(tbl.Rows[0][1], 64)
	large, _ := strconv.ParseFloat(tbl.Rows[1][1], 64)
	if large <= small {
		t.Fatalf("election cost did not grow with m: %v vs %v", small, large)
	}
}
