package experiments

import (
	"reflect"
	"testing"

	"repro/internal/explore"
)

// The golden tests pin the deterministic experiment outputs cell-for-cell.
// Table 1's measured state counts and E2's exhaustive verdicts (including
// the exact number of machine states explored per total) are functions of
// the constructions alone — any drift here means a construction, the
// compiler, the converter or the exploration engine changed behaviour, not
// just formatting. Update the expectations only with an explanation of
// which construction legitimately changed.

func TestTable1Golden(t *testing.T) {
	tbl, err := Table1(6)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]string{
		{"1", "2", "5", "3", "4", "1804"},
		{"2", "10", "7", "11", "7", "4502"},
		{"3", "60", "9", "61", "11", "7272"},
		{"4", "1412", "14", "1413", "16", "10042"},
		{"5", "918070", "23", "918071*", "29", "12812"},
		{"6", "420133695870", "42", "420133695871*", "63", "15582"},
	}
	if !reflect.DeepEqual(tbl.Rows, want) {
		t.Fatalf("Table1(6) rows drifted:\n got %v\nwant %v", tbl.Rows, want)
	}
}

// TestFigure1ExactGolden pins E2's exhaustive machine checks: the verdict
// and the exact total of machine states explored across all placements for
// each m. It runs at two worker counts to pin the engine's determinism
// guarantee at the experiment level, not just in the explorer's own tests.
func TestFigure1ExactGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive check")
	}
	want := [][]string{
		{"1", "false", "false", "verified (530 states explored)"},
		{"2", "false", "false", "verified (2724 states explored)"},
		{"3", "false", "false", "verified (9156 states explored)"},
		{"4", "true", "true", "verified (29441 states explored)"},
		{"5", "true", "true", "verified (101181 states explored)"},
		{"6", "true", "true", "verified (209052 states explored)"},
	}
	// The third configuration forces out-of-core operation (a 4 KiB budget
	// spills both the interner key log and the frontier): the golden rows —
	// including the exact state counts — must not move.
	for _, opts := range []explore.Options{
		{Workers: 1},
		{Workers: 3},
		{Workers: 3, MemBudget: 4 << 10, SpillDir: t.TempDir()},
	} {
		tbl, err := Figure1(6, true, opts)
		if err != nil {
			t.Fatalf("opts=%+v: %v", opts, err)
		}
		if !reflect.DeepEqual(tbl.Rows, want) {
			t.Fatalf("Figure1(6, exact) rows drifted at opts=%+v:\n got %v\nwant %v",
				opts, tbl.Rows, want)
		}
	}
}

// TestShrinkExploreGolden pins E17b cell-for-cell: the exact reachable
// configuration counts of the plain-converter and shrink-pipeline protocols
// for the E2 and E10 artefacts. The counts are a function of the
// constructions and the §7 conversion alone; the second configuration runs
// the same explorations out of core (2 KiB budget) and must not move a cell.
func TestShrinkExploreGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive check")
	}
	want := [][]string{
		{"figure1 (4 <= x < 7)", "leaderless, 1 input", "12", "904->492", "16301->15960", "verified"},
		{"czerner n=1 (x >= 2)", "leader model, x = 1", "24", "1804->514", "1897->1853", "verified"},
	}
	for _, opts := range []explore.Options{
		{Workers: 2},
		{Workers: 2, MemBudget: 2 << 10, SpillDir: t.TempDir()},
	} {
		tbl, err := ShrinkExplore(opts)
		if err != nil {
			t.Fatalf("opts=%+v: %v", opts, err)
		}
		if !reflect.DeepEqual(tbl.Rows, want) {
			t.Fatalf("ShrinkExplore rows drifted at opts=%+v:\n got %v\nwant %v",
				opts, tbl.Rows, want)
		}
	}
}

// TestTheorem2ChurnGolden pins E11b cell for cell. The fault layer draws
// from the same seeded stream as the scheduler, so every cell — including
// the number of agents the join churn injects and the step count of the
// ⟨elect⟩ phase under crash/revive — is a deterministic function of the
// seed. Drift here means the fault-injection layer, a scheduler or a
// construction changed behaviour.
func TestTheorem2ChurnGolden(t *testing.T) {
	tbl, err := Theorem2Churn(1)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]string{
		{"unary x ≥ 5 [4]", "7 agents", "crash 0.2% / revive 0.4%", "true", "7", "yes"},
		{"unary x ≥ 5 [4]", "4 agents", "joins in K (0.05%)", "true", "85", "NO (fooled)"},
		{"unary x ≥ 5 [4]", "4 agents", "joins in v1 (0.05%)", "true", "97", "yes"},
		{"threshold x ≥ 1 (§5–6, ⟨elect⟩)", "15 agents", "crash 0.1% / revive 1%", "elected (3158 steps)", "15", "yes"},
	}
	if !reflect.DeepEqual(tbl.Rows, want) {
		t.Fatalf("Theorem2Churn(1) rows drifted:\n got %v\nwant %v", tbl.Rows, want)
	}
}
