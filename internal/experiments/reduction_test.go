package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func TestReductionTableShape(t *testing.T) {
	tbl, err := Reduction()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("%d rows", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		full, _ := strconv.Atoi(row[1])
		reduced, _ := strconv.Atoi(row[2])
		if reduced <= 0 || reduced > full {
			t.Fatalf("bad reduction row %v", row)
		}
		if !strings.HasSuffix(row[3], "%") {
			t.Fatalf("kept column %q", row[3])
		}
	}
}
