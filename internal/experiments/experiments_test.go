package experiments

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/explore"
	"repro/internal/simulate"
)

func TestTableRender(t *testing.T) {
	tbl := &Table{
		ID:      "T",
		Title:   "demo",
		Columns: []string{"a", "bb"},
		Notes:   []string{"a note"},
	}
	tbl.AddRow(1, "x")
	tbl.AddRow("longer", 22)
	var sb strings.Builder
	if err := tbl.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"== T: demo ==", "a", "bb", "longer", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTableMarkdown(t *testing.T) {
	tbl := &Table{ID: "T", Title: "demo", Columns: []string{"a"}}
	tbl.AddRow("v")
	var sb strings.Builder
	if err := tbl.Markdown(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "| a |") || !strings.Contains(out, "| v |") {
		t.Fatalf("markdown wrong:\n%s", out)
	}
}

func TestTable1Shape(t *testing.T) {
	tbl, err := Table1(6)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 6 {
		t.Fatalf("%d rows, want 6", len(tbl.Rows))
	}
	// The headline shape: unary grows like k, binary like log k, ours like
	// log log k. Check the counts at n = 5 (k = 918070): unary ≫ binary ≫
	// ours is the wrong direction — ours is larger than binary for small n
	// because of the conversion constants; what must hold is the *growth*:
	// between n = 2 and n = 5, unary multiplies by ~10⁵, binary roughly
	// quadruples, ours stays within a small constant factor.
	parse := func(s string) float64 {
		s = strings.TrimSuffix(s, "*")
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("unparseable count %q", s)
		}
		return v
	}
	unary2, unary5 := parse(tbl.Rows[1][3]), parse(tbl.Rows[4][3])
	binary2, binary5 := parse(tbl.Rows[1][4]), parse(tbl.Rows[4][4])
	ours2, ours5 := parse(tbl.Rows[1][5]), parse(tbl.Rows[4][5])
	if unary5/unary2 < 1000 {
		t.Fatalf("unary growth too small: %v → %v", unary2, unary5)
	}
	if g := binary5 / binary2; g < 2 || g > 20 {
		t.Fatalf("binary growth out of shape: %v → %v", binary2, binary5)
	}
	if g := ours5 / ours2; g > 4 {
		t.Fatalf("our construction grows too fast: %v → %v", ours2, ours5)
	}
	// And the crossover: by n = 5 this paper's protocol is already well
	// below the unary protocol, and by n = 6 the gap is astronomical.
	if ours5*10 > unary5 {
		t.Fatalf("no crossover vs unary at n=5: ours %v, unary %v", ours5, unary5)
	}
	unary6, ours6 := parse(tbl.Rows[5][3]), parse(tbl.Rows[5][5])
	if ours6*1e6 > unary6 {
		t.Fatalf("crossover not widening at n=6: ours %v, unary %v", ours6, unary6)
	}
}

func TestFigure1DecisionsNoExact(t *testing.T) {
	tbl, err := Figure1(8, false, explore.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		if row[1] != row[2] {
			t.Fatalf("m=%s: interpreter decided %s, want %s", row[0], row[2], row[1])
		}
	}
}

func TestFigure2RowsMatchPaper(t *testing.T) {
	tbl, err := Figure2()
	if err != nil {
		t.Fatal(err)
	}
	wantClass := map[string]string{
		"i-proper":        "proper",
		"weakly i-proper": "weakly-proper",
		"i-low":           "low",
		"i-high":          "high",
		"i-empty":         "empty",
	}
	for _, row := range tbl.Rows {
		want := wantClass[row[0]]
		if !strings.Contains(row[5], want) {
			t.Fatalf("row %q classified %s, want to include %q", row[0], row[5], want)
		}
	}
}

func TestTheorem3TableFastPath(t *testing.T) {
	tbl, err := Theorem3(6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 6 {
		t.Fatalf("%d rows, want 6", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if row[2] != "verified" {
			t.Fatalf("n=%s: double-exponential bound not verified", row[0])
		}
		if strings.Contains(row[4], "≠!") {
			t.Fatalf("n=%s: wrong decision in sweep: %s", row[0], row[4])
		}
	}
}

func TestTheorem5Accounting(t *testing.T) {
	tbl, err := Theorem5(4)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		states, _ := strconv.Atoi(row[4])
		ceiling, _ := strconv.Atoi(row[5])
		if states > ceiling {
			t.Fatalf("n=%s: %d states exceed the Prop 16 ceiling %d", row[0], states, ceiling)
		}
	}
}

func TestTheorem2RobustnessVerdicts(t *testing.T) {
	if testing.Short() {
		t.Skip("slow randomised experiment")
	}
	tbl, err := Theorem2(explore.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	fooled, robustRows := 0, 0
	for _, row := range tbl.Rows {
		switch {
		case strings.HasPrefix(row[0], "this paper"):
			if row[6] != "yes" {
				t.Fatalf("the construction was fooled: %v", row)
			}
			robustRows++
		default:
			if row[6] == "yes" {
				t.Fatalf("a 1-aware baseline was unexpectedly robust: %v", row)
			}
			fooled++
		}
	}
	if fooled != 2 || robustRows != 3 {
		t.Fatalf("unexpected row counts: fooled=%d robust=%d", fooled, robustRows)
	}
}

func TestConvergenceSmall(t *testing.T) {
	tbl, err := Convergence([]int64{8, 16}, 2, 3, 0, 1, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("%d rows, want 4", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if row[4] != "0" {
			t.Fatalf("wrong outputs in convergence run: %v", row)
		}
	}
	// The batched fast path with a worker pool must still decide every run
	// correctly.
	fast, err := Convergence([]int64{8, 16}, 2, 3, 64, 2, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(fast.Rows) != 4 {
		t.Fatalf("%d batched rows, want 4", len(fast.Rows))
	}
	for _, row := range fast.Rows {
		if row[4] != "0" {
			t.Fatalf("wrong outputs in batched convergence run: %v", row)
		}
	}
	// Kernel selection: each named kernel must decide every run correctly
	// too (tiny populations drive auto/batch into the exact fallback, so
	// this covers the handoff plumbing rather than the bulk math).
	for _, kernel := range []string{simulate.KernelExact, simulate.KernelBatch, simulate.KernelAuto} {
		kt, err := Convergence([]int64{8, 16}, 2, 3, 0, 1, kernel)
		if err != nil {
			t.Fatalf("kernel %q: %v", kernel, err)
		}
		if len(kt.Rows) != 4 {
			t.Fatalf("kernel %q: %d rows, want 4", kernel, len(kt.Rows))
		}
		for _, row := range kt.Rows {
			if row[4] != "0" {
				t.Fatalf("kernel %q: wrong outputs in convergence run: %v", kernel, row)
			}
		}
	}
	if _, err := Convergence([]int64{8}, 1, 3, 0, 1, "bogus"); err == nil {
		t.Fatal("bogus kernel name accepted")
	}
}

func TestAllFastConfig(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	var sb strings.Builder
	cfg := Config{
		Table1MaxN:        4,
		Figure1MaxTotal:   5,
		Figure1Exact:      false,
		Theorem3MaxN:      4,
		Theorem3SweepMaxN: 1,
		Theorem5MaxN:      3,
		ConvergenceSizes:  []int64{8},
		ConvergenceRuns:   2,
		Seed:              7,
	}
	if err := RenderAll(&sb, cfg); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"E1 (Table 1)", "E2 (Figure 1)", "E3 (Figure 2)",
		"E6 (Theorem 3)", "E9 (Theorem 5", "E11 (Theorem 2)", "E11b (Theorem 2, churn)", "E12"} {
		if !strings.Contains(out, want) {
			t.Fatalf("All output missing %q", want)
		}
	}
}
