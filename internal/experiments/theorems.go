package experiments

import (
	"fmt"

	"repro/internal/compile"
	"repro/internal/convert"
	"repro/internal/core"
	"repro/internal/popprog"
)

// Theorem3 regenerates E6: for each n, the construction's threshold k(n),
// the bound 2^(2^(n-1)), and the program size — verifying the O(n)-size /
// double-exponential-threshold trade-off — plus a decision sweep around the
// threshold for the simulable levels.
func Theorem3(maxN, sweepMaxN int) (*Table, error) {
	t := &Table{
		ID:    "E6 (Theorem 3)",
		Title: "O(n)-size programs decide x ≥ k with k ≥ 2^(2^(n-1))",
		Columns: []string{
			"n", "k(n)", "k ≥ 2^(2^(n-1))", "program size",
			"decision sweep (m: decided/expected)",
		},
		Notes: []string{
			"sweep: program-level interpreter with hinted restarts, m ∈ {k−2..k+1}",
			"exact model checking of the full pipeline at n = 1 lives in internal/core's tests",
		},
	}
	for n := 1; n <= maxN; n++ {
		c, err := core.New(n)
		if err != nil {
			return nil, err
		}
		ok, err := core.VerifyDoubleExp(n)
		if err != nil {
			return nil, err
		}
		sweep := "(not simulated)"
		if n <= sweepMaxN && c.K.IsInt64() {
			k := c.K.Int64()
			budget := int64(6_000_000)
			if n >= 3 {
				// Level-i zero checks cost Θ(Nᵢ) nested operations, so a
				// decision at level n costs on the order of k(n) steps —
				// inherent to the construction, not a simulator artefact.
				budget = 40_000_000
			}
			var parts []string
			for m := k - 2; m <= k+1; m++ {
				if m < 1 {
					continue
				}
				res, err := popprog.DecideTotal(c.Program, m, popprog.DecideOptions{
					Seed: int64(n)*1000 + m, Budget: budget, TruthProb: 0.9,
					Attempts: 5, RestartHint: c.RestartHint(), HintProb: 0.4,
				})
				if err != nil {
					return nil, fmt.Errorf("theorem 3, n=%d m=%d: %w", n, m, err)
				}
				want := m >= k
				mark := ""
				if res.Output != want {
					mark = "≠!"
				}
				parts = append(parts, fmt.Sprintf("%d:%v/%v%s", m, fmtBool(res.Output), fmtBool(want), mark))
			}
			sweep = fmt.Sprintf("%v", parts)
		}
		t.AddRow(n, c.K.String(), verdict(ok), c.Program.Size(), sweep)
	}
	return t, nil
}

// Equality regenerates E6b (the §9 remark): the same machinery decides
// x = k(n); the decision must flip to true exactly at m = k and back.
func Equality(maxN int) (*Table, error) {
	t := &Table{
		ID:      "E6b (§9, equality)",
		Title:   "the equality variant decides x = k(n)",
		Columns: []string{"n", "k(n)", "size vs threshold variant", "decision sweep"},
		Notes:   []string{"exact model checking of the n = 1 equality machine lives in internal/core's tests"},
	}
	for n := 1; n <= maxN; n++ {
		eq, err := core.NewEquality(n)
		if err != nil {
			return nil, err
		}
		th, err := core.New(n)
		if err != nil {
			return nil, err
		}
		sweep := "(not simulated)"
		if n <= 2 && eq.K.IsInt64() {
			k := eq.K.Int64()
			var parts []string
			for m := k - 1; m <= k+1; m++ {
				if m < 1 {
					continue
				}
				res, err := popprog.DecideTotal(eq.Program, m, popprog.DecideOptions{
					Seed: 600 + m, Budget: 6_000_000, TruthProb: 0.85, Attempts: 5,
					RestartHint: eq.RestartHint(), HintProb: 0.3,
				})
				if err != nil {
					return nil, fmt.Errorf("equality n=%d m=%d: %w", n, m, err)
				}
				want := m == k
				mark := ""
				if res.Output != want {
					mark = "≠!"
				}
				parts = append(parts, fmt.Sprintf("%d:%v/%v%s", m, fmtBool(res.Output), fmtBool(want), mark))
			}
			sweep = fmt.Sprintf("%v", parts)
		}
		t.AddRow(n, eq.K.String(), fmt.Sprintf("+%d", eq.Program.Size()-th.Program.Size()), sweep)
	}
	return t, nil
}

// Theorem5 regenerates E9: the size accounting of the two conversions.
// Proposition 14 bounds the machine size by O(program size); Proposition 16
// bounds the protocol states by 2·(|Q| + 7Σ|ℱ_X| + L). Both bounds are
// reported as measured values next to their ceilings.
func Theorem5(maxN int) (*Table, error) {
	t := &Table{
		ID:    "E9 (Theorem 5 / Props 14, 16)",
		Title: "program → machine → protocol size accounting",
		Columns: []string{
			"n", "program size", "machine size", "machine L",
			"protocol states", "Prop 16 ceiling", "agent overhead |F|",
		},
	}
	for n := 1; n <= maxN; n++ {
		c, err := core.New(n)
		if err != nil {
			return nil, err
		}
		machine, err := compile.Compile(c.Program)
		if err != nil {
			return nil, err
		}
		_, protocolStates, err := convert.CountStates(machine)
		if err != nil {
			return nil, err
		}
		sumDomains := 0
		for _, p := range machine.Pointers {
			sumDomains += len(p.Domain)
		}
		ceiling := 2 * (len(machine.Registers) + 7*sumDomains + machine.NumInstrs())
		t.AddRow(n, c.Program.Size(), machine.Size(), machine.NumInstrs(),
			protocolStates, ceiling, len(machine.Pointers))
	}
	return t, nil
}
