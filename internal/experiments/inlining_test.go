package experiments

import (
	"strconv"
	"testing"
)

func TestInliningBlowupExponential(t *testing.T) {
	tbl, err := Inlining(8)
	if err != nil {
		t.Fatal(err)
	}
	var inlined []int64
	for _, row := range tbl.Rows {
		v, err := strconv.ParseInt(row[2], 10, 64)
		if err != nil {
			t.Fatalf("unparseable %q", row[2])
		}
		inlined = append(inlined, v)
	}
	// Exponential: each level should multiply the inlined count by > 1.5.
	for i := 2; i < len(inlined); i++ {
		if float64(inlined[i]) < 1.5*float64(inlined[i-1]) {
			t.Fatalf("inlined counts not exponential: %v", inlined)
		}
	}
	t.Logf("inlined instruction counts: %v", inlined)
}
