package experiments

import (
	"fmt"

	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/multiset"
	"repro/internal/popmachine"
	"repro/internal/popprog"
)

// Figure1 regenerates the Figure 1 experiment (E2): the example population
// program deciding 4 ≤ x < 7, decided for every total m both by the
// program-level interpreter (statistical) and by exhaustive model checking
// of the compiled machine over every initial placement (exact). The exact
// checks run on the parallel exploration engine configured by exOpts
// (worker count, memory budget, spill directory); the experiment pins its
// own state bound. The verdicts and state counts are identical for any
// worker count and any budget — out-of-core runs are bit-identical.
func Figure1(maxTotal int64, exact bool, exOpts explore.Options) (*Table, error) {
	t := &Table{
		ID:      "E2 (Figure 1)",
		Title:   "the example program decides 4 ≤ x < 7",
		Columns: []string{"m", "φ(m)", "interpreter", "machine (exact, all placements)"},
	}
	prog := popprog.Figure1Program()
	machine, err := compile.Compile(prog)
	if err != nil {
		return nil, err
	}
	sys := popmachine.System{M: machine}
	exOpts.MaxStates = 3_000_000
	for m := int64(1); m <= maxTotal; m++ {
		want := m >= 4 && m < 7
		res, err := popprog.DecideTotal(prog, m, popprog.DecideOptions{
			Seed: m, Budget: 400_000, TruthProb: 0.8, Attempts: 5,
		})
		if err != nil {
			return nil, fmt.Errorf("figure 1, m=%d: %w", m, err)
		}
		exactCell := "(skipped)"
		if exact {
			ok := true
			var states int
			var checkErr error
			multiset.Enumerate(len(machine.Registers), m, func(regs *multiset.Multiset) {
				if checkErr != nil {
					return
				}
				cfg, err := machine.InitialConfig(regs)
				if err != nil {
					checkErr = err
					return
				}
				r, err := explore.ExploreParallel[*popmachine.Config](sys, []*popmachine.Config{cfg}, exOpts)
				if err != nil {
					checkErr = err
					return
				}
				states += r.NumStates
				if !r.StabilisesTo(want) {
					ok = false
				}
			})
			if checkErr != nil {
				return nil, checkErr
			}
			exactCell = fmt.Sprintf("%v (%d states explored)", verdict(ok), states)
		}
		t.AddRow(m, fmtBool(want), fmtBool(res.Output), exactCell)
	}
	return t, nil
}

// Figure2 regenerates the configuration-classification table of Figure 2
// (E3) on the n = 2 construction (N₁ = 1, N₂ = 4), level i = 2.
func Figure2() (*Table, error) {
	c, err := core.New(2)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "E3 (Figure 2)",
		Title:   "configuration types at level i = 2 (N₁ = 1, N₂ = 4)",
		Columns: []string{"row", "x₂", "x̄₂", "y₂", "ȳ₂", "classes"},
		Notes:   []string{"lower levels are proper (x̄₁ = ȳ₁ = 1) except for the i-empty row"},
	}
	type row struct {
		name   string
		l1, l2 [4]int64
		r      int64
	}
	rows := []row{
		{"i-proper", [4]int64{0, 1, 0, 1}, [4]int64{0, 4, 0, 4}, 0},
		{"weakly i-proper", [4]int64{0, 1, 0, 1}, [4]int64{3, 1, 1, 3}, 0},
		{"i-low", [4]int64{0, 1, 0, 1}, [4]int64{0, 1, 0, 4}, 0},
		{"i-high", [4]int64{0, 1, 0, 1}, [4]int64{3, 4, 2, 3}, 0},
		{"i-empty", [4]int64{2, 4, 3, 3}, [4]int64{0, 0, 0, 0}, 0},
	}
	for _, r := range rows {
		cfg := multiset.New(c.NumRegisters())
		cfg.Set(c.X(1), r.l1[0])
		cfg.Set(c.XBar(1), r.l1[1])
		cfg.Set(c.Y(1), r.l1[2])
		cfg.Set(c.YBar(1), r.l1[3])
		cfg.Set(c.X(2), r.l2[0])
		cfg.Set(c.XBar(2), r.l2[1])
		cfg.Set(c.Y(2), r.l2[2])
		cfg.Set(c.YBar(2), r.l2[3])
		cfg.Set(c.R(), r.r)
		classes := c.Classify(cfg, 2)
		names := make([]string, len(classes))
		for i, cl := range classes {
			names[i] = cl.String()
		}
		t.AddRow(r.name, r.l2[0], r.l2[1], r.l2[2], r.l2[3], fmt.Sprintf("%v", names))
	}
	return t, nil
}

func fmtBool(b bool) string {
	if b {
		return "true"
	}
	return "false"
}

func verdict(ok bool) string {
	if ok {
		return "verified"
	}
	return "FAILED"
}
