package experiments

import (
	"fmt"

	"repro/internal/compile"
	"repro/internal/convert"
	"repro/internal/popprog"
	"repro/internal/sched"
)

// Election regenerates E10 as a table: interactions until the ⟨elect⟩ phase
// of a converted protocol completes (exactly one agent per pointer family,
// Lemma 15), as a function of the population size. The shape to observe:
// the count grows roughly quadratically in m under uniform random pairing
// (each collapse needs a specific pair to meet), and the election always
// completes — the lexicographic potential argument in executable form.
func Election(extraAgents []int64, runs int, seed int64) (*Table, error) {
	prog := &popprog.Program{
		Name:      "ge1",
		Registers: []string{"x"},
		Procedures: []*popprog.Procedure{{
			Name: "Main",
			Body: []popprog.Stmt{
				popprog.SetOF{Value: false},
				popprog.While{Cond: popprog.Not{C: popprog.Detect{Reg: 0}}},
				popprog.SetOF{Value: true},
				popprog.While{Cond: popprog.True{}},
			},
		}},
	}
	machine, err := compile.Compile(prog)
	if err != nil {
		return nil, err
	}
	res, err := convert.Convert(machine)
	if err != nil {
		return nil, err
	}
	p := res.Protocol

	t := &Table{
		ID:    "E10 (Lemma 15)",
		Title: fmt.Sprintf("leader election cost (|F| = %d pointer agents)", res.NumPointers),
		Columns: []string{
			"m", "mean interactions to elect", "max",
		},
		Notes: []string{
			"uniform random-pair scheduler; the election always completed",
		},
	}
	for _, extra := range extraAgents {
		m := int64(res.NumPointers) + extra
		var total, maxSteps int64
		for r := 0; r < runs; r++ {
			cfg, err := p.InitialConfig(m)
			if err != nil {
				return nil, err
			}
			// The Fenwick-indexed scheduler consumes the same random draws
			// as RandomPair and maps them to the same outcomes, so this is
			// trace-identical to the historical measurement — just faster
			// over the converted protocol's large state space.
			s := sched.NewBatchRandomPair(p, sched.NewRand(seed+int64(r)*7919+extra))
			var steps int64
			for !res.Elected(cfg) {
				s.Step(cfg)
				steps++
				if steps > 100_000_000 {
					return nil, fmt.Errorf("election did not converge at m=%d", m)
				}
			}
			total += steps
			if steps > maxSteps {
				maxSteps = steps
			}
		}
		t.AddRow(m, fmt.Sprintf("%.0f", float64(total)/float64(runs)), maxSteps)
	}
	return t, nil
}
