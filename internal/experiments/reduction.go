package experiments

import (
	"fmt"

	"repro/internal/compile"
	"repro/internal/convert"
	"repro/internal/core"
	"repro/internal/popprog"
	"repro/internal/protocol"
)

// Reduction regenerates E14 (beyond the paper): how tight is the
// Proposition 16 conversion? The support-closure reduction removes every
// state no run can ever occupy (unreachable stage/value/opinion
// combinations); the surviving fraction measures how much of the 2·|Q*|
// bound is real. Full conversion is required, so only small machines are
// tabulated.
func Reduction() (*Table, error) {
	t := &Table{
		ID:    "E14 (conversion tightness)",
		Title: "support-closure reduction of converted protocols",
		Columns: []string{
			"machine", "states", "reduced", "kept %", "transitions", "reduced",
		},
		Notes: []string{
			"reduction preserves behaviour exactly (removed states are unoccupiable);",
			"the reduced ge1 protocol is re-verified exhaustively in internal/convert's tests",
		},
	}
	targets := []struct {
		name string
		prog *popprog.Program
	}{
		{"ge1 (x ≥ 1)", geOneProgramForReduction()},
		{"figure1 (4 ≤ x < 7)", popprog.Figure1Program()},
		{"czerner n=1 (x ≥ 2)", nil}, // filled below
	}
	c1, err := core.New(1)
	if err != nil {
		return nil, err
	}
	targets[2].prog = c1.Program

	for _, target := range targets {
		machine, err := compile.Compile(target.prog)
		if err != nil {
			return nil, err
		}
		conv, err := convert.Convert(machine)
		if err != nil {
			return nil, err
		}
		reduced, _, err := protocol.Reduce(conv.Protocol)
		if err != nil {
			return nil, err
		}
		kept := float64(reduced.NumStates()) / float64(conv.Protocol.NumStates()) * 100
		t.AddRow(target.name,
			conv.Protocol.NumStates(), reduced.NumStates(),
			fmt.Sprintf("%.0f%%", kept),
			len(conv.Protocol.Transitions), len(reduced.Transitions))
	}
	return t, nil
}

// geOneProgramForReduction mirrors the ge1 program used across the tests.
func geOneProgramForReduction() *popprog.Program {
	return &popprog.Program{
		Name:      "ge1",
		Registers: []string{"x"},
		Procedures: []*popprog.Procedure{{
			Name: "Main",
			Body: []popprog.Stmt{
				popprog.SetOF{Value: false},
				popprog.While{Cond: popprog.Not{C: popprog.Detect{Reg: 0}}},
				popprog.SetOF{Value: true},
				popprog.While{Cond: popprog.True{}},
			},
		}},
	}
}
