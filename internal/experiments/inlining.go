package experiments

import (
	"math/big"

	"repro/internal/analysis"
	"repro/internal/core"
)

// Inlining regenerates E15 (an ablation of §4's design choice): what the
// construction would cost *without* procedures. The modular instruction
// count is linear in n; the fully inlined count — each call site pasting
// its callee's body — grows exponentially, because Large at level i expands
// the whole tower below it several times. This is the quantified version
// of the paper's remark that procedures exist for succinctness.
func Inlining(maxN int) (*Table, error) {
	t := &Table{
		ID:    "E15 (inlining ablation)",
		Title: "modular vs fully inlined instruction counts of the construction",
		Columns: []string{
			"n", "modular instructions", "inlined instructions", "blow-up ×",
		},
	}
	for n := 1; n <= maxN; n++ {
		c, err := core.New(n)
		if err != nil {
			return nil, err
		}
		inlined, err := analysis.InlinedInstructionCount(c.Program)
		if err != nil {
			return nil, err
		}
		modular := int64(c.Program.InstructionCount())
		ratio := new(big.Float).Quo(
			new(big.Float).SetInt64(inlined),
			new(big.Float).SetInt64(modular))
		t.AddRow(n, modular, inlined, ratio.Text('f', 1))
	}
	return t, nil
}
