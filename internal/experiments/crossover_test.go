package experiments

import (
	"strings"
	"testing"
)

func TestTable1CrossoverFound(t *testing.T) {
	tbl, err := Table1Crossover(18)
	if err != nil {
		t.Fatal(err)
	}
	found := ""
	for _, row := range tbl.Rows {
		if strings.Contains(row[4], "crossover") {
			found = row[0]
			break
		}
	}
	if found == "" {
		t.Fatalf("no crossover up to n=18: %v", tbl.Rows)
	}
	t.Logf("crossover at n = %s", found)
}
