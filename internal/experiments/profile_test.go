package experiments

import (
	"strconv"
	"testing"
)

func TestProcedureProfileShape(t *testing.T) {
	tbl, err := ProcedureProfile(2, 10, 1_000_000, 3)
	if err != nil {
		t.Fatal(err)
	}
	calls := make(map[string]int64)
	for _, row := range tbl.Rows {
		v, err := strconv.ParseInt(row[1], 10, 64)
		if err != nil {
			t.Fatalf("unparseable call count %q", row[1])
		}
		calls[row[0]] = v
	}
	// Level-1 procedures must dominate level-2 ones: the level-2 machinery
	// drives level-1 counters many times per own step.
	if calls["Large(xb1)"] <= calls["Large(xb2)"] {
		t.Fatalf("level-1 Large not dominant: %v", calls)
	}
	if calls["Zero(x1)"] == 0 {
		t.Fatalf("Zero(x1) never called: %v", calls)
	}
}
