package experiments

import (
	"reflect"
	"testing"
)

// TestTopologyConvergenceGolden pins E16 cell-for-cell. The shape is the
// point, not the individual step counts: the epidemic converges on every
// connected topology, while majority and the §5–6 threshold construction's
// ⟨elect⟩ phase converge on the clique only — on the sparse topologies the
// deciding agents separate behind follower regions and every run burns its
// budget. The schedulers are seed-deterministic per-step machines, so any
// drift here means scheduler sampling, fault bookkeeping or the §5–6
// pipeline changed behaviour, not just luck.
func TestTopologyConvergenceGolden(t *testing.T) {
	tbl, err := TopologyConvergence(16, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]string{
		{"epidemic", "clique", "2/2", "50", "0"},
		{"epidemic", "ring", "2/2", "150", "0"},
		{"epidemic", "grid", "2/2", "125", "0"},
		{"epidemic", "powerlaw", "2/2", "75", "0"},
		{"majority", "clique", "2/2", "250", "0"},
		{"majority", "ring", "0/2", "—", "0"},
		{"majority", "grid", "0/2", "—", "0"},
		{"majority", "powerlaw", "0/2", "—", "0"},
		{"threshold x ≥ 1 (§5–6)", "clique", "2/2", "2302", "—"},
		{"threshold x ≥ 1 (§5–6)", "ring", "0/2", "—", "—"},
		{"threshold x ≥ 1 (§5–6)", "grid", "0/2", "—", "—"},
		{"threshold x ≥ 1 (§5–6)", "powerlaw", "0/2", "—", "—"},
	}
	if !reflect.DeepEqual(tbl.Rows, want) {
		t.Fatalf("TopologyConvergence(16, 2, 1) rows drifted:\n got %v\nwant %v", tbl.Rows, want)
	}
}

// TestTopologyConvergenceNoStalledWrongOutputs guards the accounting: a
// stalled run must be counted out of the converged tally, never into the
// wrong-output column (the output while stalled is mixed, not wrong).
func TestTopologyConvergenceNoStalledWrongOutputs(t *testing.T) {
	tbl, err := TopologyConvergence(16, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		if len(row) != 5 {
			t.Fatalf("row %v has %d cells, want 5", row, len(row))
		}
		if row[4] != "0" && row[4] != "—" {
			t.Errorf("%s/%s reported wrong outputs: %s", row[0], row[1], row[4])
		}
	}
}
