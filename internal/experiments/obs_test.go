package experiments

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/obs"
)

// renderAll runs the full experiment suite with cfg and returns every table
// rendered into one byte stream, exactly as ppexperiments prints it.
func renderAll(t *testing.T, cfg Config) []byte {
	t.Helper()
	tables, err := All(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for _, tbl := range tables {
		if err := tbl.Render(&buf); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// TestAllDifferentialObs is the telemetry read-only guarantee at the
// experiment level: the rendered output of the whole suite must be
// byte-identical with telemetry off, on, and off again. Any instrumentation
// that leaks into control flow — an extra RNG draw, a reordered reduction,
// a write to the wrong stream — shows up here as a byte diff.
func TestAllDifferentialObs(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a trimmed experiment sweep three times")
	}
	cfg := Config{
		Table1MaxN:         4,
		Figure1MaxTotal:    5,
		Figure1Exact:       true,
		Theorem3MaxN:       4,
		Theorem3SweepMaxN:  1,
		Theorem5MaxN:       4,
		ConvergenceSizes:   []int64{8, 16},
		ConvergenceRuns:    2,
		Seed:               3,
		ConvergenceBatch:   32,
		ConvergenceWorkers: 2,
		ExploreWorkers:     2,
	}

	off1 := renderAll(t, cfg)

	m := obs.Enable()
	on := renderAll(t, cfg)
	snap := m.Snapshot()
	obs.Disable()

	off2 := renderAll(t, cfg)

	if !bytes.Equal(off1, on) {
		t.Fatalf("output differs with telemetry on:\n--- off ---\n%s--- on ---\n%s", off1, on)
	}
	if !bytes.Equal(off1, off2) {
		t.Fatalf("output not reproducible across telemetry toggling:\n--- first ---\n%s--- second ---\n%s", off1, off2)
	}
	// The instrumented run must actually have observed the suite.
	if snap.Sched.Steps == 0 || snap.Sim.RunsFinished == 0 || snap.Explore.States == 0 {
		t.Fatalf("telemetry-on run recorded no activity: %+v", snap)
	}
}

// TestTable1CrossoverGolden pins E1b around the crossover: at n = 16 the
// O(log log k) construction of this paper (43 282 states) first beats the
// binary-counter baseline (57 698 states), exactly as claimed in the
// reproduction's Table 1 extension. The closed-form bit counts double each
// level, so any drift in the constructions or the converter moves these
// cells.
func TestTable1CrossoverGolden(t *testing.T) {
	tbl, err := Table1Crossover(17)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]string{
		{"15", "19259", "28913", "40512", "binary"},
		{"16", "38516", "57698", "43282", "this paper  ← crossover"},
		{"17", "77031", "115502", "46052", "this paper"},
	}
	if len(tbl.Rows) != 17 {
		t.Fatalf("Table1Crossover(17) has %d rows, want 17", len(tbl.Rows))
	}
	if got := tbl.Rows[14:17]; !reflect.DeepEqual(got, want) {
		t.Fatalf("crossover rows drifted:\n got %v\nwant %v", got, want)
	}
}
