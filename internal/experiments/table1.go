package experiments

import (
	"fmt"
	"math/big"

	"repro/internal/baseline"
	"repro/internal/compile"
	"repro/internal/convert"
	"repro/internal/core"
	"repro/internal/presburger"
)

// Table1 regenerates Table 1 of the paper as *measured* state counts: for
// each threshold k(n) of the paper's family, the number of protocol states
// used by the Θ(k)-state unary construction [4], the Θ(log k)-state
// binary construction [14], and this paper's Θ(log log k)-state
// construction, against the predicate size |τ_k|.
//
// The paper's Table 1 reports asymptotic bounds; the reproduction target is
// the *shape*: three separated growth curves — exponential, linear and
// logarithmic in |τ_k| respectively.
func Table1(maxN int) (*Table, error) {
	t := &Table{
		ID:    "E1 (Table 1)",
		Title: "state complexity of x ≥ k constructions (measured states)",
		Columns: []string{
			"n", "k = k(n)", "|τ_k| (bits)",
			"unary Θ(k)", "binary Θ(log k)", "this paper Θ(log log k)",
		},
		Notes: []string{
			"unary/binary counts are materialised only while the protocol fits in memory;",
			"beyond that the closed-form count is reported (suffix '*').",
			"binary construction: BinaryThresholdGeneral(k) — ⌈log₂k⌉ tokens + popcount(k)+1 bookkeeping states.",
			"this paper: states of the fully converted protocol (2·|Q*|), which depend on n only.",
		},
	}
	for n := 1; n <= maxN; n++ {
		c, err := core.New(n)
		if err != nil {
			return nil, err
		}
		k := c.K
		tau := presburger.Threshold("x", k)

		unary, err := unaryStates(k)
		if err != nil {
			return nil, err
		}
		binary, err := binaryStates(k)
		if err != nil {
			return nil, err
		}
		machine, err := compile.Compile(c.Program)
		if err != nil {
			return nil, err
		}
		_, protocolStates, err := convert.CountStates(machine)
		if err != nil {
			return nil, err
		}
		t.AddRow(n, k.String(), tau.Size(), unary, binary, protocolStates)
	}
	return t, nil
}

// unaryStates counts the states of the unary flock-of-birds protocol for
// threshold k: k+1, materialised when small.
func unaryStates(k *big.Int) (string, error) {
	if k.IsInt64() && k.Int64() <= 2048 {
		p, err := baseline.UnaryThreshold(k.Int64())
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("%d", p.NumStates()), nil
	}
	n := new(big.Int).Add(k, big.NewInt(1))
	return n.String() + "*", nil
}

// binaryStates counts the states of the general binary-counter protocol
// deciding x ≥ k (BinaryThresholdGeneral): tokens (⌈log₂k⌉) + accumulators
// (popcount−1) + z + K. Materialised while k fits a machine word, closed
// form beyond.
func binaryStates(k *big.Int) (string, error) {
	if k.IsInt64() {
		p, err := baseline.BinaryThresholdGeneral(k.Int64())
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("%d", p.NumStates()), nil
	}
	tokens := k.BitLen() // L + 1
	popcount := 0
	for _, w := range k.Bits() {
		popcount += onesCount(uint(w))
	}
	return fmt.Sprintf("%d*", tokens+popcount-1+2), nil
}

func onesCount(w uint) int {
	n := 0
	for ; w != 0; w &= w - 1 {
		n++
	}
	return n
}
