package experiments

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/compile"
	"repro/internal/convert"
	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/multiset"
	"repro/internal/popprog"
	"repro/internal/protocol"
	"repro/internal/sched"
	"repro/internal/simulate"
)

// Theorem2 regenerates E11: the robustness comparison of §8. Every prior
// threshold construction is 1-aware — planting a single noise agent in the
// "threshold reached" state flips its decision — while the paper's
// construction tolerates arbitrary noise as long as the intended agents
// number at least |Q| (almost self-stabilisation, Definition 7).
//
// The baselines are checked exactly (model checking of the noisy initial
// configuration); the paper-side witness is the program-level construction
// run from configurations with noise planted in arbitrary registers, which
// by the population-program semantics (§4: "all registers may have
// arbitrary values") must still decide the total correctly.
//
// The exact baseline verdicts run on the parallel exploration engine
// configured by exOpts (worker count, memory budget, spill directory);
// verdicts are identical for any worker count and any budget.
func Theorem2(exOpts explore.Options) (*Table, error) {
	t := &Table{
		ID:    "E11 (Theorem 2)",
		Title: "robustness: 1-aware baselines vs the almost-self-stabilising construction",
		Columns: []string{
			"protocol", "intended input", "noise", "total m", "φ(m)", "decided", "robust?",
		},
		Notes: []string{
			"baselines: exact verdicts over all fair runs of the noisy configuration",
			"this paper: program-level runs with adversarial register placement (n = 2, k = 10)",
		},
	}

	// Unary baseline, threshold 5, 2 intended agents + 1 noise agent in K:
	// every fair run wrongly accepts.
	unary, err := baseline.UnaryThreshold(5)
	if err != nil {
		return nil, err
	}
	noisy, err := baseline.NoisyConfig(unary, []int64{2}, map[string]int64{"K": 1})
	if err != nil {
		return nil, err
	}
	res, err := explore.ExploreParallel(explore.NewProtocolSystem(unary),
		[]*multiset.Multiset{noisy}, exOpts)
	if err != nil {
		return nil, err
	}
	decided := res.Consensus()
	t.AddRow("unary x ≥ 5 [4]", "2 agents", "1 agent in K", 3, "false",
		decided, robust(decided, protocol.OutputFalse))

	// Binary baseline, threshold 8, same story.
	binary, err := baseline.BinaryThreshold(3)
	if err != nil {
		return nil, err
	}
	noisyB, err := baseline.NoisyConfig(binary, []int64{2}, map[string]int64{"K": 1})
	if err != nil {
		return nil, err
	}
	resB, err := explore.ExploreParallel(explore.NewProtocolSystem(binary),
		[]*multiset.Multiset{noisyB}, exOpts)
	if err != nil {
		return nil, err
	}
	decidedB := resB.Consensus()
	t.AddRow("binary x ≥ 8 [14]", "2 agents", "1 agent in K", 3, "false",
		decidedB, robust(decidedB, protocol.OutputFalse))

	// The paper's construction (n = 2, k = 10): noise scattered across
	// high-level registers, totals on both sides of the threshold.
	c, err := core.New(2)
	if err != nil {
		return nil, err
	}
	for _, tc := range []struct {
		total int64
		desc  string
	}{
		{7, "7 agents scattered"},
		{10, "10 agents scattered"},
		{12, "12 agents scattered"},
	} {
		cfg := adversarialPlacement(c, tc.total)
		out, err := popprog.Decide(c.Program, cfg, popprog.DecideOptions{
			Seed: tc.total, Budget: 6_000_000, TruthProb: 0.85, Attempts: 5,
			RestartHint: c.RestartHint(), HintProb: 0.3,
		})
		if err != nil {
			return nil, fmt.Errorf("theorem 2, m=%d: %w", tc.total, err)
		}
		want := tc.total >= 10
		outStr := protocol.OutputFalse
		if out.Output {
			outStr = protocol.OutputTrue
		}
		wantOut := protocol.OutputFalse
		if want {
			wantOut = protocol.OutputTrue
		}
		t.AddRow("this paper x ≥ 10", "—", tc.desc, tc.total, fmtBool(want),
			outStr, robust(outStr, wantOut))
	}
	return t, nil
}

func robust(got, want protocol.Output) string {
	if got == want {
		return "yes"
	}
	return "NO (fooled)"
}

// Theorem2Churn regenerates E11b: the §8 robustness axis extended from
// static initial noise to *churn* — faults injected while the protocol runs,
// through the fault-injection layer of the topology schedulers. Where E11
// plants one bad agent before the run starts, E11b lets the adversary crash,
// revive and inject agents mid-execution:
//
//   - crash/revive churn keeps the configuration's counts intact (a crashed
//     agent holds its state, it just stops interacting), so a correct
//     protocol must still decide its input;
//   - joins in the absorbing state K are the dynamic version of E11's
//     1-awareness attack: a single injected K converts the population and
//     flips the decision of a threshold that was never reached;
//   - joins in the input state are benign churn — genuinely new input units —
//     and the decision must track the grown population.
//
// Every row is a fixed-seed deterministic run (the fault layer draws from
// the same seeded stream as the scheduler), so the table is golden-pinned
// cell for cell.
func Theorem2Churn(seed int64) (*Table, error) {
	t := &Table{
		ID:    "E11b (Theorem 2, churn)",
		Title: "robustness under churn: faults injected during the run, not just at initialisation",
		Columns: []string{
			"protocol", "intended input", "churn", "decided", "final m", "robust?",
		},
		Notes: []string{
			"clique topology, uniform alive-edge scheduler with crash/revive/join fault injection",
			"joins in an input state are genuine new input: robust = the decision tracks the final population",
		},
	}
	unary, err := baseline.UnaryThreshold(5)
	if err != nil {
		return nil, err
	}
	clique := sched.TopologySpec{Kind: sched.TopoClique}
	churnRun := func(p *protocol.Protocol, cfg *multiset.Multiset, f *sched.Faults,
		steps int64, s int64) (protocol.Output, int64, error) {
		sch, err := clique.NewScheduler(p, sched.NewRand(s), f, cfg.Size())
		if err != nil {
			return protocol.OutputMixed, 0, err
		}
		for i := int64(0); i < steps; i++ {
			sch.Step(cfg)
		}
		return p.OutputOf(cfg), cfg.Size(), nil
	}

	for _, tc := range []struct {
		input  int64
		churn  string
		faults *sched.Faults
		want   protocol.Output
	}{
		// Crash/revive only: counts are untouched, the decision must stand.
		{7, "crash 0.2% / revive 0.4%",
			&sched.Faults{Crash: 0.002, Revive: 0.004},
			protocol.OutputTrue},
		// The 1-awareness attack, dynamic edition: one join in K suffices.
		{4, "joins in K (0.05%)",
			&sched.Faults{Join: 0.0005, JoinState: unary.StateIndex("K")},
			protocol.OutputFalse},
		// Benign churn: joins carry genuine input units past the threshold.
		{4, "joins in v1 (0.05%)",
			&sched.Faults{Join: 0.0005, JoinState: unary.StateIndex("v1")},
			protocol.OutputTrue},
	} {
		cfg, err := baseline.NoisyConfig(unary, []int64{tc.input}, nil)
		if err != nil {
			return nil, err
		}
		decided, finalM, err := churnRun(unary, cfg, tc.faults, 200_000, seed)
		if err != nil {
			return nil, fmt.Errorf("theorem 2 churn, unary input %d: %w", tc.input, err)
		}
		t.AddRow("unary x ≥ 5 [4]", fmt.Sprintf("%d agents", tc.input), tc.churn,
			decided, finalM, robust(decided, tc.want))
	}

	// The §5–6 construction's ⟨elect⟩ phase under crash/revive churn: pointer
	// agents may be frozen mid-rendezvous, but as long as revival outpaces
	// crashing the phase must still complete (E16 measures the same phase per
	// topology; this row measures it per fault regime).
	prog := &popprog.Program{
		Name:      "ge1",
		Registers: []string{"x"},
		Procedures: []*popprog.Procedure{{
			Name: "Main",
			Body: []popprog.Stmt{
				popprog.SetOF{Value: false},
				popprog.While{Cond: popprog.Not{C: popprog.Detect{Reg: 0}}},
				popprog.SetOF{Value: true},
				popprog.While{Cond: popprog.True{}},
			},
		}},
	}
	machine, err := compile.Compile(prog)
	if err != nil {
		return nil, err
	}
	res, err := convert.Convert(machine)
	if err != nil {
		return nil, err
	}
	mElect := int64(res.NumPointers) + 9
	cfg, err := res.Protocol.InitialConfig(mElect)
	if err != nil {
		return nil, err
	}
	sch, err := clique.NewScheduler(res.Protocol, sched.NewRand(seed+211),
		&sched.Faults{Crash: 0.001, Revive: 0.01}, mElect)
	if err != nil {
		return nil, err
	}
	const electBudget = 2_000_000
	var steps int64
	for !res.Elected(cfg) && steps < electBudget {
		sch.Step(cfg)
		steps++
	}
	elected, verdict := "stalled", "NO (stalled)"
	if res.Elected(cfg) {
		elected, verdict = fmt.Sprintf("elected (%d steps)", steps), "yes"
	}
	t.AddRow("threshold x ≥ 1 (§5–6, ⟨elect⟩)", fmt.Sprintf("%d agents", mElect),
		"crash 0.1% / revive 1%", elected, cfg.Size(), verdict)
	return t, nil
}

// adversarialPlacement scatters total agents round-robin across a hostile
// set of registers (a high-level register, a bar register, R and a level-1
// register) — configurations no "intended" initialisation would produce.
func adversarialPlacement(c *core.Construction, total int64) *multiset.Multiset {
	cfg := multiset.New(c.NumRegisters())
	targets := []int{c.X(2), c.YBar(2), c.R(), c.X(1)}
	for u := int64(0); u < total; u++ {
		cfg.Add(targets[u%int64(len(targets))], 1)
	}
	return cfg
}

// Convergence regenerates E12: interactions to convergence under the
// uniform random-pair scheduler, the cost model of §1. Majority and the
// unary threshold are compared across population sizes; the shape to
// reproduce is super-linear interaction counts (≈ m log m to m²), i.e.
// Θ(polylog)–Θ(m) parallel time.
//
// batch > 0 routes every run through the batched fast-path scheduler
// (distribution-preserving; convergence steps are then reported at batch
// granularity), and workers > 1 measures the runs on a worker pool —
// results are bit-identical for any worker count. batch = 0, workers ≤ 1,
// kernel = "" reproduces the historical per-step, sequential measurement
// exactly. A non-empty kernel (simulate.KernelExact/Batch/Auto) selects the
// interaction kernel instead; "batch" and large-population "auto" runs use
// the count-based collision kernel, whose trajectories are statistically —
// not bit — identical to the exact sampler's.
func Convergence(sizes []int64, runs int, seed int64, batch int64, workers int, kernel string) (*Table, error) {
	t := &Table{
		ID:    "E12 (§1)",
		Title: "convergence cost under uniform random pairing",
		Columns: []string{
			"protocol", "m", "mean interactions", "mean parallel time", "wrong outputs",
		},
	}
	opts := simulate.Options{MaxSteps: 200_000_000, BatchSize: batch, Workers: workers, Kernel: kernel}
	maj, err := baseline.Majority()
	if err != nil {
		return nil, err
	}
	for _, m := range sizes {
		x := m/2 + 1
		y := m - x
		stats, err := simulate.MeasureConvergence(maj, []int64{x, y}, true, runs, seed, opts)
		if err != nil {
			return nil, err
		}
		t.AddRow("majority", m, fmt.Sprintf("%.0f", stats.MeanSteps),
			fmt.Sprintf("%.1f", stats.MeanParallel), stats.WrongOutputs)
	}
	unary, err := baseline.UnaryThreshold(8)
	if err != nil {
		return nil, err
	}
	for _, m := range sizes {
		stats, err := simulate.MeasureConvergence(unary, []int64{m}, m >= 8, runs, seed+1, opts)
		if err != nil {
			return nil, err
		}
		t.AddRow("unary x ≥ 8", m, fmt.Sprintf("%.0f", stats.MeanSteps),
			fmt.Sprintf("%.1f", stats.MeanParallel), stats.WrongOutputs)
	}
	return t, nil
}
