package experiments

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/multiset"
	"repro/internal/popprog"
	"repro/internal/protocol"
	"repro/internal/simulate"
)

// Theorem2 regenerates E11: the robustness comparison of §8. Every prior
// threshold construction is 1-aware — planting a single noise agent in the
// "threshold reached" state flips its decision — while the paper's
// construction tolerates arbitrary noise as long as the intended agents
// number at least |Q| (almost self-stabilisation, Definition 7).
//
// The baselines are checked exactly (model checking of the noisy initial
// configuration); the paper-side witness is the program-level construction
// run from configurations with noise planted in arbitrary registers, which
// by the population-program semantics (§4: "all registers may have
// arbitrary values") must still decide the total correctly.
//
// The exact baseline verdicts run on the parallel exploration engine with
// exploreWorkers workers (0 = one per CPU); verdicts are identical for any
// worker count.
func Theorem2(exploreWorkers int) (*Table, error) {
	t := &Table{
		ID:    "E11 (Theorem 2)",
		Title: "robustness: 1-aware baselines vs the almost-self-stabilising construction",
		Columns: []string{
			"protocol", "intended input", "noise", "total m", "φ(m)", "decided", "robust?",
		},
		Notes: []string{
			"baselines: exact verdicts over all fair runs of the noisy configuration",
			"this paper: program-level runs with adversarial register placement (n = 2, k = 10)",
		},
	}

	// Unary baseline, threshold 5, 2 intended agents + 1 noise agent in K:
	// every fair run wrongly accepts.
	unary, err := baseline.UnaryThreshold(5)
	if err != nil {
		return nil, err
	}
	noisy, err := baseline.NoisyConfig(unary, []int64{2}, map[string]int64{"K": 1})
	if err != nil {
		return nil, err
	}
	res, err := explore.ExploreParallel(explore.NewProtocolSystem(unary),
		[]*multiset.Multiset{noisy}, explore.Options{Workers: exploreWorkers})
	if err != nil {
		return nil, err
	}
	decided := res.Consensus()
	t.AddRow("unary x ≥ 5 [4]", "2 agents", "1 agent in K", 3, "false",
		decided, robust(decided, protocol.OutputFalse))

	// Binary baseline, threshold 8, same story.
	binary, err := baseline.BinaryThreshold(3)
	if err != nil {
		return nil, err
	}
	noisyB, err := baseline.NoisyConfig(binary, []int64{2}, map[string]int64{"K": 1})
	if err != nil {
		return nil, err
	}
	resB, err := explore.ExploreParallel(explore.NewProtocolSystem(binary),
		[]*multiset.Multiset{noisyB}, explore.Options{Workers: exploreWorkers})
	if err != nil {
		return nil, err
	}
	decidedB := resB.Consensus()
	t.AddRow("binary x ≥ 8 [14]", "2 agents", "1 agent in K", 3, "false",
		decidedB, robust(decidedB, protocol.OutputFalse))

	// The paper's construction (n = 2, k = 10): noise scattered across
	// high-level registers, totals on both sides of the threshold.
	c, err := core.New(2)
	if err != nil {
		return nil, err
	}
	for _, tc := range []struct {
		total int64
		desc  string
	}{
		{7, "7 agents scattered"},
		{10, "10 agents scattered"},
		{12, "12 agents scattered"},
	} {
		cfg := adversarialPlacement(c, tc.total)
		out, err := popprog.Decide(c.Program, cfg, popprog.DecideOptions{
			Seed: tc.total, Budget: 6_000_000, TruthProb: 0.85, Attempts: 5,
			RestartHint: c.RestartHint(), HintProb: 0.3,
		})
		if err != nil {
			return nil, fmt.Errorf("theorem 2, m=%d: %w", tc.total, err)
		}
		want := tc.total >= 10
		outStr := protocol.OutputFalse
		if out.Output {
			outStr = protocol.OutputTrue
		}
		wantOut := protocol.OutputFalse
		if want {
			wantOut = protocol.OutputTrue
		}
		t.AddRow("this paper x ≥ 10", "—", tc.desc, tc.total, fmtBool(want),
			outStr, robust(outStr, wantOut))
	}
	return t, nil
}

func robust(got, want protocol.Output) string {
	if got == want {
		return "yes"
	}
	return "NO (fooled)"
}

// adversarialPlacement scatters total agents round-robin across a hostile
// set of registers (a high-level register, a bar register, R and a level-1
// register) — configurations no "intended" initialisation would produce.
func adversarialPlacement(c *core.Construction, total int64) *multiset.Multiset {
	cfg := multiset.New(c.NumRegisters())
	targets := []int{c.X(2), c.YBar(2), c.R(), c.X(1)}
	for u := int64(0); u < total; u++ {
		cfg.Add(targets[u%int64(len(targets))], 1)
	}
	return cfg
}

// Convergence regenerates E12: interactions to convergence under the
// uniform random-pair scheduler, the cost model of §1. Majority and the
// unary threshold are compared across population sizes; the shape to
// reproduce is super-linear interaction counts (≈ m log m to m²), i.e.
// Θ(polylog)–Θ(m) parallel time.
//
// batch > 0 routes every run through the batched fast-path scheduler
// (distribution-preserving; convergence steps are then reported at batch
// granularity), and workers > 1 measures the runs on a worker pool —
// results are bit-identical for any worker count. batch = 0, workers ≤ 1,
// kernel = "" reproduces the historical per-step, sequential measurement
// exactly. A non-empty kernel (simulate.KernelExact/Batch/Auto) selects the
// interaction kernel instead; "batch" and large-population "auto" runs use
// the count-based collision kernel, whose trajectories are statistically —
// not bit — identical to the exact sampler's.
func Convergence(sizes []int64, runs int, seed int64, batch int64, workers int, kernel string) (*Table, error) {
	t := &Table{
		ID:    "E12 (§1)",
		Title: "convergence cost under uniform random pairing",
		Columns: []string{
			"protocol", "m", "mean interactions", "mean parallel time", "wrong outputs",
		},
	}
	opts := simulate.Options{MaxSteps: 200_000_000, BatchSize: batch, Workers: workers, Kernel: kernel}
	maj, err := baseline.Majority()
	if err != nil {
		return nil, err
	}
	for _, m := range sizes {
		x := m/2 + 1
		y := m - x
		stats, err := simulate.MeasureConvergence(maj, []int64{x, y}, true, runs, seed, opts)
		if err != nil {
			return nil, err
		}
		t.AddRow("majority", m, fmt.Sprintf("%.0f", stats.MeanSteps),
			fmt.Sprintf("%.1f", stats.MeanParallel), stats.WrongOutputs)
	}
	unary, err := baseline.UnaryThreshold(8)
	if err != nil {
		return nil, err
	}
	for _, m := range sizes {
		stats, err := simulate.MeasureConvergence(unary, []int64{m}, m >= 8, runs, seed+1, opts)
		if err != nil {
			return nil, err
		}
		t.AddRow("unary x ≥ 8", m, fmt.Sprintf("%.0f", stats.MeanSteps),
			fmt.Sprintf("%.1f", stats.MeanParallel), stats.WrongOutputs)
	}
	return t, nil
}
