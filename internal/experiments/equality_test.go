package experiments

import (
	"strings"
	"testing"
)

func TestEqualityTableCorrectSweep(t *testing.T) {
	tbl, err := Equality(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("%d rows", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if strings.Contains(row[3], "≠!") {
			t.Fatalf("wrong equality decision: %v", row)
		}
	}
}
