package experiments

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/popprog"
	"repro/internal/sched"
)

// ProcedureProfile regenerates E13 (an ablation artefact beyond the paper):
// where the construction spends its work during one accepted decision.
// Lipton-style counting predicts the profile — the virtual counters at
// level i are driven by IncrPair(i−1), whose zero-checks call Large(i−1),
// which in turn drives level i−2, so call counts should increase
// geometrically toward the lower levels.
func ProcedureProfile(n int, m int64, budget int64, seed int64) (*Table, error) {
	c, err := core.New(n)
	if err != nil {
		return nil, err
	}
	oracle := popprog.NewRandomOracle(sched.NewRand(seed))
	oracle.TruthProb = 0.85
	oracle.Hint = c.RestartHint()
	oracle.HintProb = 0.3
	regs, err := c.GoodConfig(m)
	if err != nil {
		return nil, err
	}
	it, err := popprog.NewInterp(c.Program, oracle, regs)
	if err != nil {
		return nil, err
	}
	it.Run(budget)

	t := &Table{
		ID:    "E13 (profile)",
		Title: fmt.Sprintf("procedure call profile: n=%d, m=%d, %d steps", n, m, it.Steps),
		Columns: []string{
			"procedure", "calls", "calls/1k steps",
		},
		Notes: []string{
			"run from the good configuration; the construction keeps re-verifying its",
			"invariants forever, so counts reflect the steady-state verification loop",
		},
	}
	type row struct {
		name  string
		calls int64
	}
	var rows []row
	for i, proc := range c.Program.Procedures {
		if it.ProcCalls[i] == 0 {
			continue
		}
		rows = append(rows, row{proc.Name, it.ProcCalls[i]})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].calls > rows[j].calls })
	for _, r := range rows {
		perK := float64(r.calls) / float64(it.Steps) * 1000
		t.AddRow(r.name, r.calls, fmt.Sprintf("%.2f", perK))
	}
	return t, nil
}
