package experiments

import (
	"fmt"

	"repro/internal/compile"
	"repro/internal/convert"
	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/multiset"
	"repro/internal/popprog"
)

// ShrinkReports runs the shrink pipeline (E17) over the Table 1 family and
// returns one OptReport per target: the Figure 1 program followed by the
// double-exponential construction for n = 1..maxN.
//
// Targets whose level is ≤ fullN (Figure 1 counts as level 1) run the full
// pipeline — convert.Optimize plus a materialised unoptimized baseline — so
// their reports carry actual before/after transition counts. The remaining
// targets use the counting-only convert.OptimizeStates path, which is cheap
// even where the full conversion would emit millions of ⟨elect⟩
// transitions; their reports have Transitions = -1.
func ShrinkReports(maxN, fullN int) ([]*convert.OptReport, error) {
	if maxN < 1 {
		return nil, fmt.Errorf("shrink: maxN must be ≥ 1, got %d", maxN)
	}
	type target struct {
		level int
		prog  *popprog.Program
	}
	targets := []target{{1, popprog.Figure1Program()}}
	for n := 1; n <= maxN; n++ {
		c, err := core.New(n)
		if err != nil {
			return nil, err
		}
		targets = append(targets, target{n, c.Program})
	}
	var reports []*convert.OptReport
	for _, tg := range targets {
		m, err := compile.Compile(tg.prog)
		if err != nil {
			return nil, err
		}
		var report *convert.OptReport
		if tg.level <= fullN {
			_, report, err = convert.Optimize(m)
			if err == nil {
				err = report.MaterializeBaseline(m)
			}
		} else {
			_, report, err = convert.OptimizeStates(m)
		}
		if err != nil {
			return nil, fmt.Errorf("shrink %s: %w", m.Name, err)
		}
		reports = append(reports, report)
	}
	return reports, nil
}

// Shrink renders E17: the shrink pipeline's before/after accounting over
// the Table 1 family. Every cell is "before→after"; the final |Q| and |T|
// columns are materialised only for the full-pipeline rows (level ≤ fullN)
// and show "—" elsewhere.
func Shrink(maxN, fullN int) (*Table, error) {
	reports, err := ShrinkReports(maxN, fullN)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "E17 (shrink)",
		Title: "state-space optimization pipeline, before→after",
		Columns: []string{
			"target", "L", "Σ|ℱ_X|", "size (Def. 6)", "2·|Q*|", "|Q| final", "|T|",
		},
		Notes: []string{
			"machine passes: thread-jumps, goto-next, dead-store, unreachable, narrow-domains;",
			"protocol passes (full rows only): support-closure reduce, prune-silent, dedup.",
			fmt.Sprintf("rows up to level %d materialise protocols for the |Q|/|T| columns; '—' = counted only.", fullN),
			"no pass removes a pointer, so |F| and the decided predicate are unchanged (pinned by the optimize tests).",
		},
	}
	// ASCII arrow: Table.Render pads by byte width, so multibyte runes in
	// cells would skew the column alignment.
	arrow := func(before, after int) string { return fmt.Sprintf("%d->%d", before, after) }
	for _, r := range reports {
		qFinal, trans := "—", "—"
		if r.After.Transitions >= 0 {
			qFinal = arrow(r.Before.States, r.After.States)
			trans = arrow(r.Before.Transitions, r.After.Transitions)
		}
		t.AddRow(
			r.Name,
			arrow(r.Before.Instrs, r.After.Instrs),
			arrow(r.Before.DomainSum, r.After.DomainSum),
			arrow(r.Before.MachineSize, r.After.MachineSize),
			arrow(r.Before.States, convertedStates(r)),
			qFinal,
			trans,
		)
	}
	return t, nil
}

// ShrinkExplore regenerates E17b: the shrink pipeline measured where it
// matters — at the exact model checker. The E2 artefact (the Figure 1
// program, explored from the standard leaderless initial configuration with
// one input agent) and the E10 artefact (the n = 1 double-exponential
// construction in the leader model — `LeaderConfig`, exactly the π(C) shape
// of Lemma 15, on the reject side x = 1) are each converted twice — by the
// plain §7 converter and by the shrink pipeline — and both protocols are
// exhaustively explored. The pipeline never removes a pointer, so both
// variants decide the same predicate over the same population; the
// reachable-configuration and wall-clock gaps are what the shrink buys
// verification. Exploration runs on the parallel engine configured by
// exOpts; the counts are bit-identical for any worker count and budget.
func ShrinkExplore(exOpts explore.Options) (*Table, error) {
	t := &Table{
		ID:    "E17b (shrink-explore)",
		Title: "explorer baselines on shrink artefacts, plain vs optimized",
		Columns: []string{
			"target", "config", "m", "|Q| plain->opt", "reachable plain->opt", "verdict",
		},
		Notes: []string{
			"figure1: leaderless initial config, |F| elect agents + 1 input; czerner: leader model pi(C), x = 1.",
			"reachable counts are exact (bottom-SCC model check) and identical for any worker count/budget.",
		},
	}
	c1, err := core.New(1)
	if err != nil {
		return nil, err
	}
	type target struct {
		name   string
		config string
		prog   *popprog.Program
		want   bool
		// initial builds the variant's start configuration; both variants
		// share |F|, so the population is identical on both sides.
		initial func(r *convert.Result) (*multiset.Multiset, error)
	}
	targets := []target{
		{"figure1 (4 <= x < 7)", "leaderless, 1 input", popprog.Figure1Program(), false,
			func(r *convert.Result) (*multiset.Multiset, error) {
				return r.Protocol.InitialConfig(int64(r.NumPointers) + 1)
			}},
		{"czerner n=1 (x >= 2)", "leader model, x = 1", c1.Program, false,
			func(r *convert.Result) (*multiset.Multiset, error) {
				return r.LeaderConfig(1, 0)
			}},
	}
	arrow := func(before, after int) string { return fmt.Sprintf("%d->%d", before, after) }
	exOpts.MaxStates = 5_000_000
	for _, tg := range targets {
		machine, err := compile.Compile(tg.prog)
		if err != nil {
			return nil, err
		}
		plain, err := convert.Convert(machine)
		if err != nil {
			return nil, err
		}
		opt, _, err := convert.Optimize(machine)
		if err != nil {
			return nil, err
		}
		if plain.NumPointers != opt.NumPointers {
			return nil, fmt.Errorf("shrink-explore %s: pipeline changed |F| (%d vs %d)",
				tg.name, plain.NumPointers, opt.NumPointers)
		}
		var m int64
		counts := make([]int, 2)
		for i, res := range []*convert.Result{plain, opt} {
			cfg, err := tg.initial(res)
			if err != nil {
				return nil, err
			}
			m = cfg.Size()
			r, err := explore.ExploreParallel(explore.NewProtocolSystem(res.Protocol),
				[]*multiset.Multiset{cfg}, exOpts)
			if err != nil {
				return nil, fmt.Errorf("shrink-explore %s: %w", tg.name, err)
			}
			if !r.StabilisesTo(tg.want) {
				return nil, fmt.Errorf("shrink-explore %s: variant %d does not stabilise to %v",
					tg.name, i, tg.want)
			}
			counts[i] = r.NumStates
		}
		t.AddRow(tg.name, tg.config, m,
			arrow(len(plain.Protocol.States), len(opt.Protocol.States)),
			arrow(counts[0], counts[1]),
			"verified")
	}
	return t, nil
}

// convertedStates returns the shrunk machine's as-converted protocol state
// count (2·|Q*| after the machine passes, before the protocol passes). On
// the counting-only path that is After.States itself; on the full path the
// protocol passes' removals are added back.
func convertedStates(r *convert.OptReport) int {
	s := r.After.States
	for _, p := range r.ProtocolPasses {
		s += p.StatesRemoved
	}
	return s
}
