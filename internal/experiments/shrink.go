package experiments

import (
	"fmt"

	"repro/internal/compile"
	"repro/internal/convert"
	"repro/internal/core"
	"repro/internal/popprog"
)

// ShrinkReports runs the shrink pipeline (E17) over the Table 1 family and
// returns one OptReport per target: the Figure 1 program followed by the
// double-exponential construction for n = 1..maxN.
//
// Targets whose level is ≤ fullN (Figure 1 counts as level 1) run the full
// pipeline — convert.Optimize plus a materialised unoptimized baseline — so
// their reports carry actual before/after transition counts. The remaining
// targets use the counting-only convert.OptimizeStates path, which is cheap
// even where the full conversion would emit millions of ⟨elect⟩
// transitions; their reports have Transitions = -1.
func ShrinkReports(maxN, fullN int) ([]*convert.OptReport, error) {
	if maxN < 1 {
		return nil, fmt.Errorf("shrink: maxN must be ≥ 1, got %d", maxN)
	}
	type target struct {
		level int
		prog  *popprog.Program
	}
	targets := []target{{1, popprog.Figure1Program()}}
	for n := 1; n <= maxN; n++ {
		c, err := core.New(n)
		if err != nil {
			return nil, err
		}
		targets = append(targets, target{n, c.Program})
	}
	var reports []*convert.OptReport
	for _, tg := range targets {
		m, err := compile.Compile(tg.prog)
		if err != nil {
			return nil, err
		}
		var report *convert.OptReport
		if tg.level <= fullN {
			_, report, err = convert.Optimize(m)
			if err == nil {
				err = report.MaterializeBaseline(m)
			}
		} else {
			_, report, err = convert.OptimizeStates(m)
		}
		if err != nil {
			return nil, fmt.Errorf("shrink %s: %w", m.Name, err)
		}
		reports = append(reports, report)
	}
	return reports, nil
}

// Shrink renders E17: the shrink pipeline's before/after accounting over
// the Table 1 family. Every cell is "before→after"; the final |Q| and |T|
// columns are materialised only for the full-pipeline rows (level ≤ fullN)
// and show "—" elsewhere.
func Shrink(maxN, fullN int) (*Table, error) {
	reports, err := ShrinkReports(maxN, fullN)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "E17 (shrink)",
		Title: "state-space optimization pipeline, before→after",
		Columns: []string{
			"target", "L", "Σ|ℱ_X|", "size (Def. 6)", "2·|Q*|", "|Q| final", "|T|",
		},
		Notes: []string{
			"machine passes: thread-jumps, goto-next, dead-store, unreachable, narrow-domains;",
			"protocol passes (full rows only): support-closure reduce, prune-silent, dedup.",
			fmt.Sprintf("rows up to level %d materialise protocols for the |Q|/|T| columns; '—' = counted only.", fullN),
			"no pass removes a pointer, so |F| and the decided predicate are unchanged (pinned by the optimize tests).",
		},
	}
	// ASCII arrow: Table.Render pads by byte width, so multibyte runes in
	// cells would skew the column alignment.
	arrow := func(before, after int) string { return fmt.Sprintf("%d->%d", before, after) }
	for _, r := range reports {
		qFinal, trans := "—", "—"
		if r.After.Transitions >= 0 {
			qFinal = arrow(r.Before.States, r.After.States)
			trans = arrow(r.Before.Transitions, r.After.Transitions)
		}
		t.AddRow(
			r.Name,
			arrow(r.Before.Instrs, r.After.Instrs),
			arrow(r.Before.DomainSum, r.After.DomainSum),
			arrow(r.Before.MachineSize, r.After.MachineSize),
			arrow(r.Before.States, convertedStates(r)),
			qFinal,
			trans,
		)
	}
	return t, nil
}

// convertedStates returns the shrunk machine's as-converted protocol state
// count (2·|Q*| after the machine passes, before the protocol passes). On
// the counting-only path that is After.States itself; on the full path the
// protocol passes' removals are added back.
func convertedStates(r *convert.OptReport) int {
	s := r.After.States
	for _, p := range r.ProtocolPasses {
		s += p.StatesRemoved
	}
	return s
}
