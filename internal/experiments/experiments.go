// Package experiments regenerates every table and figure of the paper as an
// executable experiment (the per-experiment index lives in DESIGN.md, the
// measured results in EXPERIMENTS.md):
//
//	E1  Table 1    — state complexity of threshold constructions
//	E2  Figure 1   — the 4 ≤ x < 7 example program, decided end-to-end
//	E3  Figure 2   — configuration-type classification
//	E6  Theorem 3  — the double-exponential threshold construction
//	E9  Theorem 5  — program → machine → protocol size accounting
//	E11 Theorem 2  — almost self-stabilisation vs 1-aware baselines
//	E12 §1         — convergence cost under random pairing
//	E17 shrink     — optimization-pipeline before/after accounting
//
// (E4/E5/E7/E8/E10 — the lowering figures and the per-procedure lemmas —
// are machine-checked in the test suites of internal/compile,
// internal/convert and internal/core rather than rendered as tables.)
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment result: the rows the paper reports,
// regenerated from this repository's implementations.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row; values are stringified with %v.
func (t *Table) AddRow(values ...interface{}) {
	row := make([]string, len(values))
	for i, v := range values {
		row[i] = fmt.Sprintf("%v", v)
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title); err != nil {
		return err
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			parts[i] = pad(cell, widths[i])
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
		return err
	}
	if err := writeRow(t.Columns); err != nil {
		return err
	}
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if err := writeRow(sep); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

func pad(s string, width int) string {
	if len(s) >= width {
		return s
	}
	return s + strings.Repeat(" ", width-len(s))
}

// Markdown renders the table as a GitHub-flavoured markdown table (used to
// regenerate EXPERIMENTS.md sections).
func (t *Table) Markdown(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "### %s: %s\n\n", t.ID, t.Title); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(t.Columns, " | ")); err != nil {
		return err
	}
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = "---"
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(sep, " | ")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(row, " | ")); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "\n*%s*\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}
