package experiments

import (
	"fmt"

	"repro/internal/compile"
	"repro/internal/convert"
	"repro/internal/core"
)

// Table1Crossover extends E1 to large n using closed forms: it reports the
// number of *bits* of k(n) (≈ 2^(n−1)), the binary construction's state
// count (j+2 for the covering power of two — linear in bits), and this
// paper's measured protocol state count (linear in n, i.e. logarithmic in
// bits), and marks the crossover: the first level at which the
// O(log log k) construction has strictly fewer states than the O(log k)
// one. This is the "upper bounds need only hold for infinitely many k"
// regime of Table 1 made concrete.
func Table1Crossover(maxN int) (*Table, error) {
	t := &Table{
		ID:    "E1b (Table 1, crossover)",
		Title: "where Θ(log log k) overtakes Θ(log k)",
		Columns: []string{
			"n", "bits of k(n)", "binary states (log k)", "this paper (log log k)", "winner",
		},
		Notes: []string{
			"binary states: bitlen(k) + popcount(k) + 1 (BinaryThresholdGeneral closed form);",
			"this paper: measured 2·|Q*| of the converted protocol",
		},
	}
	crossed := false
	for n := 1; n <= maxN; n++ {
		c, err := core.New(n)
		if err != nil {
			return nil, err
		}
		machine, err := compile.Compile(c.Program)
		if err != nil {
			return nil, err
		}
		_, ours, err := convert.CountStates(machine)
		if err != nil {
			return nil, err
		}
		bits := c.K.BitLen()
		popcount := 0
		for _, w := range c.K.Bits() {
			popcount += onesCount(uint(w))
		}
		binary := bits + popcount + 1 // BinaryThresholdGeneral closed form
		winner := "binary"
		if ours < binary {
			winner = "this paper"
			if !crossed {
				winner += "  ← crossover"
				crossed = true
			}
		}
		t.AddRow(n, bits, binary, ours, winner)
	}
	if !crossed {
		t.Notes = append(t.Notes, fmt.Sprintf("no crossover up to n = %d; increase maxN", maxN))
	}
	return t, nil
}
