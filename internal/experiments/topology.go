package experiments

import (
	"errors"
	"fmt"

	"repro/internal/compile"
	"repro/internal/convert"
	"repro/internal/popprog"
	"repro/internal/protocol"
	"repro/internal/sched"
	"repro/internal/simulate"
)

// TopologyConvergence regenerates E16: convergence vs interaction topology.
// Every result in the paper is stated for the complete interaction graph —
// any two agents may meet (§1). The graph-restricted schedulers let us
// measure how load-bearing that assumption is, protocol family by family:
//
//   - epidemic (one-way propagation): converges on every connected topology
//     — propagation only needs a spanning connected graph.
//   - majority (opinion cancellation): converges on the clique, but on
//     sparse topologies opposing opinion holders separate behind follower
//     regions and never meet again — runs stall un-stabilised, burning the
//     whole budget with the output pinned mixed.
//   - the §5–6 threshold construction (the x ≥ 1 program through the
//     compile→convert pipeline): its ⟨elect⟩ phase needs same-family
//     pointer agents to meet pairwise, which sparse adjacency can postpone
//     indefinitely.
//
// Stalled cells are the measurement, not a failure: they quantify exactly
// where the uniform-clique assumption does real work in the paper's results.
func TopologyConvergence(m int64, runs int, seed int64) (*Table, error) {
	t := &Table{
		ID:    "E16 (topology)",
		Title: "convergence vs interaction topology (graph-restricted schedulers)",
		Columns: []string{
			"protocol", "topology", "converged", "mean interactions", "wrong outputs",
		},
		Notes: []string{
			fmt.Sprintf("m = %d (election: |F| pointer agents + 9); uniform random alive-edge scheduler; stalled runs hit the step budget with the output still mixed", m),
			"threshold construction: the x ≥ 1 program compiled (§5) and converted (§6); converged = ⟨elect⟩ phase complete (Lemma 15)",
		},
	}
	topos := []struct {
		name string
		spec sched.TopologySpec
	}{
		{"clique", sched.TopologySpec{Kind: sched.TopoClique}},
		{"ring", sched.TopologySpec{Kind: sched.TopoRing}},
		{"grid", sched.TopologySpec{Kind: sched.TopoGrid}},
		{"powerlaw", sched.TopologySpec{Kind: sched.TopoPowerLaw, WireSeed: 7}},
	}

	// Shared per-cell measurement: run the protocol per topology, counting
	// stalled (budget-exhausted) runs instead of failing on them.
	cell := func(p *protocol.Protocol, counts []int64, want protocol.Output,
		spec sched.TopologySpec, budget, cellSeed int64) (string, string, string, error) {
		var converged, wrong int
		var totalSteps int64
		opts := simulate.Options{
			MaxSteps: budget, StableWindow: 200, QuiescencePeriod: 50,
			Topology: &spec,
		}
		for r := 0; r < runs; r++ {
			res, err := simulate.MeasureConvergence(p, counts, want == protocol.OutputTrue,
				1, cellSeed+int64(r), opts)
			if err != nil {
				if errors.Is(err, simulate.ErrBudgetExhausted) {
					continue // a stalled run is a data point
				}
				return "", "", "", err
			}
			converged++
			wrong += res.WrongOutputs
			totalSteps += int64(res.MeanSteps)
		}
		mean := "—"
		if converged > 0 {
			mean = fmt.Sprintf("%.0f", float64(totalSteps)/float64(converged))
		}
		return fmt.Sprintf("%d/%d", converged, runs), mean, fmt.Sprintf("%d", wrong), nil
	}

	epi := protocol.NewBuilder("epidemic")
	epi.Input("I", "S")
	epi.Transition("I", "S", "I", "I")
	epi.Transition("S", "I", "I", "I")
	epi.Accepting("I")
	epiP, err := epi.Build()
	if err != nil {
		return nil, err
	}
	for _, tc := range topos {
		conv, mean, wrong, err := cell(epiP, []int64{1, m - 1}, protocol.OutputTrue,
			tc.spec, 2_000_000, seed)
		if err != nil {
			return nil, fmt.Errorf("epidemic/%s: %w", tc.name, err)
		}
		t.AddRow("epidemic", tc.name, conv, mean, wrong)
	}

	maj := protocol.NewBuilder("majority")
	maj.Input("X", "Y")
	maj.Transition("X", "Y", "x", "x")
	maj.Transition("X", "y", "X", "x")
	maj.Transition("Y", "x", "Y", "y")
	maj.Transition("x", "y", "x", "x")
	maj.Accepting("X", "x")
	majP, err := maj.Build()
	if err != nil {
		return nil, err
	}
	x := m/2 + 1
	for _, tc := range topos {
		conv, mean, wrong, err := cell(majP, []int64{x, m - x}, protocol.OutputTrue,
			tc.spec, 400_000, seed+101)
		if err != nil {
			return nil, fmt.Errorf("majority/%s: %w", tc.name, err)
		}
		t.AddRow("majority", tc.name, conv, mean, wrong)
	}

	// The §5–6 threshold construction: x ≥ 1 compiled and converted, the
	// same pipeline E10 measures on the clique. The cell measures the
	// ⟨elect⟩ phase (Lemma 15) per topology.
	prog := &popprog.Program{
		Name:      "ge1",
		Registers: []string{"x"},
		Procedures: []*popprog.Procedure{{
			Name: "Main",
			Body: []popprog.Stmt{
				popprog.SetOF{Value: false},
				popprog.While{Cond: popprog.Not{C: popprog.Detect{Reg: 0}}},
				popprog.SetOF{Value: true},
				popprog.While{Cond: popprog.True{}},
			},
		}},
	}
	machine, err := compile.Compile(prog)
	if err != nil {
		return nil, err
	}
	res, err := convert.Convert(machine)
	if err != nil {
		return nil, err
	}
	p := res.Protocol
	mElect := int64(res.NumPointers) + 9
	for _, tc := range topos {
		var converged int
		var totalSteps int64
		const budget = 2_000_000
		for r := 0; r < runs; r++ {
			cfg, err := p.InitialConfig(mElect)
			if err != nil {
				return nil, err
			}
			s, err := tc.spec.NewScheduler(p, sched.NewRand(seed+211+int64(r)), nil, mElect)
			if err != nil {
				return nil, fmt.Errorf("threshold/%s: %w", tc.name, err)
			}
			var steps int64
			for !res.Elected(cfg) && steps < budget {
				s.Step(cfg)
				steps++
			}
			if res.Elected(cfg) {
				converged++
				totalSteps += steps
			}
		}
		mean := "—"
		if converged > 0 {
			mean = fmt.Sprintf("%.0f", float64(totalSteps)/float64(converged))
		}
		t.AddRow("threshold x ≥ 1 (§5–6)", tc.name, fmt.Sprintf("%d/%d", converged, runs), mean, "—")
	}
	return t, nil
}
