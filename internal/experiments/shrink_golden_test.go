package experiments

import (
	"testing"

	"repro/internal/convert"
)

// The shrink golden tests pin the optimization pipeline's Prop. 14/16
// accounting cell for cell, before and after. The budgets are functions of
// the constructions and the passes alone — drift here means a construction,
// the compiler, or an optimization pass changed behaviour. Update the
// expectations only with an explanation of which pass legitimately changed.

type budgetGold struct {
	name                   string
	instrs, domSum, size   int
	prop16, core, states   int
	oInstrs, oDom, oSize   int
	oProp16, oCore, oState int
}

var shrinkGold = []budgetGold{
	{"figure1-4<=x<7-machine", 126, 143, 283, 1130, 452, 904, 113, 130, 257, 1026, 413, 826},
	{"czerner-threshold-n1-machine", 245, 282, 555, 2224, 902, 1804, 116, 152, 296, 1185, 495, 990},
	{"czerner-threshold-n2-machine", 612, 713, 1373, 5612, 2251, 4502, 455, 555, 1058, 4349, 1775, 3550},
	{"czerner-threshold-n3-machine", 987, 1156, 2211, 9092, 3636, 7272, 749, 917, 1734, 7181, 2917, 5834},
	{"czerner-threshold-n4-machine", 1362, 1599, 3049, 12572, 5021, 10042, 1043, 1279, 2410, 10013, 4059, 8118},
}

func checkBudget(t *testing.T, name, side string, b convert.Budget, instrs, domSum, size, prop16, core, states int) {
	t.Helper()
	got := [6]int{b.Instrs, b.DomainSum, b.MachineSize, b.Prop16Bound, b.CoreStates, b.States}
	want := [6]int{instrs, domSum, size, prop16, core, states}
	if got != want {
		t.Errorf("%s %s budget drifted:\n got L=%d Σ|F|=%d size=%d prop16=%d |Q*|=%d |Q|=%d\nwant L=%d Σ|F|=%d size=%d prop16=%d |Q*|=%d |Q|=%d",
			name, side, got[0], got[1], got[2], got[3], got[4], got[5],
			want[0], want[1], want[2], want[3], want[4], want[5])
	}
	// Prop. 16 invariant: |Q*| ≤ |Q| + 7·Σ|ℱ_X| + L, on both sides of the
	// pipeline (the bound must survive every pass, not just hold as built).
	if b.CoreStates > b.Prop16Bound {
		t.Errorf("%s %s: |Q*| = %d exceeds the Prop. 16 bound %d", name, side, b.CoreStates, b.Prop16Bound)
	}
}

// TestShrinkGolden pins the counting-only budgets (E17's cheap path) for
// the Figure 1 program and construction levels 1–4.
func TestShrinkGolden(t *testing.T) {
	reports, err := ShrinkReports(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != len(shrinkGold) {
		t.Fatalf("got %d reports, want %d", len(reports), len(shrinkGold))
	}
	for i, r := range reports {
		g := shrinkGold[i]
		if r.Name != g.name {
			t.Fatalf("report %d is %q, want %q", i, r.Name, g.name)
		}
		if r.Pipeline != convert.PipelineTag {
			t.Errorf("%s: pipeline %q, want %q", r.Name, r.Pipeline, convert.PipelineTag)
		}
		checkBudget(t, g.name, "before", r.Before, g.instrs, g.domSum, g.size, g.prop16, g.core, g.states)
		checkBudget(t, g.name, "after", r.After, g.oInstrs, g.oDom, g.oSize, g.oProp16, g.oCore, g.oState)
		if r.Before.Transitions != -1 || r.After.Transitions != -1 {
			t.Errorf("%s: counting-only report materialised transitions", r.Name)
		}
	}
}

// TestShrinkFullGolden pins the materialised before/after |Q| and |T| of
// the full pipeline — plain conversion vs shrunk + reduced + compacted —
// for Figure 1 and construction levels 1 and 2. The level-2 baseline emits
// 14.5M transitions, hence the Short gate.
func TestShrinkFullGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("materialises the level-2 baseline conversion (14.5M transitions)")
	}
	reports, err := ShrinkReports(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		name                  string
		states, transitions   int
		oStates, oTransitions int
	}{
		{"figure1-4<=x<7-machine", 904, 645364, 492, 135940},
		{"czerner-threshold-n1-machine", 1804, 2367216, 514, 92648},
		{"czerner-threshold-n2-machine", 4502, 14519052, 1808, 1357756},
	}
	if len(reports) != len(want) {
		t.Fatalf("got %d reports, want %d", len(reports), len(want))
	}
	for i, r := range reports {
		w := want[i]
		if r.Name != w.name {
			t.Fatalf("report %d is %q, want %q", i, r.Name, w.name)
		}
		got := [4]int{r.Before.States, r.Before.Transitions, r.After.States, r.After.Transitions}
		if got != [4]int{w.states, w.transitions, w.oStates, w.oTransitions} {
			t.Errorf("%s drifted: |Q| %d→%d |T| %d→%d, want |Q| %d→%d |T| %d→%d",
				r.Name, got[0], got[2], got[1], got[3],
				w.states, w.oStates, w.transitions, w.oTransitions)
		}
	}
}
