package experiments

import (
	"fmt"
	"io"

	"repro/internal/explore"
)

// Config selects experiment scope; the zero value runs the fast defaults
// used by `cmd/ppexperiments` without flags.
type Config struct {
	// Table1MaxN bounds Table 1's rows (default 6).
	Table1MaxN int
	// Figure1MaxTotal bounds Figure 1's decision sweep (default 8).
	Figure1MaxTotal int64
	// Figure1Exact enables the exhaustive machine check of E2 (default
	// true; it takes a few seconds).
	Figure1Exact bool
	// Theorem3MaxN / Theorem3SweepMaxN bound E6 (defaults 8 / 2).
	Theorem3MaxN      int
	Theorem3SweepMaxN int
	// Theorem5MaxN bounds E9 (default 6).
	Theorem5MaxN int
	// ConvergenceSizes / ConvergenceRuns configure E12
	// (defaults {16, 32, 64, 128} / 5).
	ConvergenceSizes []int64
	ConvergenceRuns  int
	// ConvergenceBatch > 0 routes E12's runs through the batched fast-path
	// scheduler with that chunk size; 0 (the default) keeps the historical
	// per-step measurement.
	ConvergenceBatch int64
	// ConvergenceWorkers > 1 measures E12's runs on a worker pool. Results
	// are bit-identical for any worker count; the default is sequential.
	ConvergenceWorkers int
	// ConvergenceKernel selects E12's interaction kernel
	// (simulate.KernelExact/Batch/Auto); empty keeps the legacy
	// batch-size-driven scheduler selection.
	ConvergenceKernel string
	// TopologyM / TopologyRuns configure E16's population size and runs per
	// (protocol, topology) cell (defaults 16 / 2).
	TopologyM    int64
	TopologyRuns int
	// ShrinkMaxN / ShrinkFullN bound E17: the largest construction level to
	// shrink-and-count, and the largest level to fully materialise for
	// before/after transition counts (defaults 4 / 1).
	ShrinkMaxN  int
	ShrinkFullN int
	// ExploreWorkers is the frontier-expansion worker count handed to the
	// parallel exact model checker for the exhaustive checks (E2's machine
	// verification, E11's baseline verdicts). Zero means one worker per
	// available CPU; results are bit-identical for any value.
	ExploreWorkers int
	// ExploreMemBudget caps the resident bytes of the exact model checker's
	// variable-size structures (interner key log + frontier); beyond it the
	// explorer spills to ExploreSpillDir. Zero keeps everything in RAM.
	// Results are bit-identical for any budget.
	ExploreMemBudget int64
	// ExploreSpillDir is the directory for the explorer's spill files when
	// ExploreMemBudget forces out-of-core operation (empty = os.TempDir()).
	ExploreSpillDir string
	// Seed seeds the randomised experiments.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Table1MaxN == 0 {
		c.Table1MaxN = 6
	}
	if c.Figure1MaxTotal == 0 {
		c.Figure1MaxTotal = 8
		c.Figure1Exact = true
	}
	if c.Theorem3MaxN == 0 {
		c.Theorem3MaxN = 8
		c.Theorem3SweepMaxN = 3
	}
	if c.Theorem5MaxN == 0 {
		c.Theorem5MaxN = 6
	}
	if len(c.ConvergenceSizes) == 0 {
		c.ConvergenceSizes = []int64{16, 32, 64, 128}
	}
	if c.ConvergenceRuns == 0 {
		c.ConvergenceRuns = 5
	}
	if c.TopologyM == 0 {
		c.TopologyM = 16
	}
	if c.TopologyRuns == 0 {
		c.TopologyRuns = 2
	}
	if c.ShrinkMaxN == 0 {
		c.ShrinkMaxN = 4
		c.ShrinkFullN = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// All runs every experiment and returns the tables in report order.
func All(cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	exOpts := explore.Options{
		Workers:   cfg.ExploreWorkers,
		MemBudget: cfg.ExploreMemBudget,
		SpillDir:  cfg.ExploreSpillDir,
	}
	var tables []*Table
	steps := []struct {
		name string
		run  func() (*Table, error)
	}{
		{"table1", func() (*Table, error) { return Table1(cfg.Table1MaxN) }},
		{"table1-crossover", func() (*Table, error) { return Table1Crossover(18) }},
		{"figure1", func() (*Table, error) {
			return Figure1(cfg.Figure1MaxTotal, cfg.Figure1Exact, exOpts)
		}},
		{"figure2", Figure2},
		{"theorem3", func() (*Table, error) { return Theorem3(cfg.Theorem3MaxN, cfg.Theorem3SweepMaxN) }},
		{"equality", func() (*Table, error) { return Equality(4) }},
		{"theorem5", func() (*Table, error) { return Theorem5(cfg.Theorem5MaxN) }},
		{"election", func() (*Table, error) {
			return Election([]int64{1, 4, 16, 48}, cfg.ConvergenceRuns, cfg.Seed)
		}},
		{"theorem2", func() (*Table, error) { return Theorem2(exOpts) }},
		{"theorem2-churn", func() (*Table, error) { return Theorem2Churn(cfg.Seed) }},
		{"convergence", func() (*Table, error) {
			return Convergence(cfg.ConvergenceSizes, cfg.ConvergenceRuns, cfg.Seed,
				cfg.ConvergenceBatch, cfg.ConvergenceWorkers, cfg.ConvergenceKernel)
		}},
		{"topology", func() (*Table, error) {
			return TopologyConvergence(cfg.TopologyM, cfg.TopologyRuns, cfg.Seed)
		}},
		{"profile", func() (*Table, error) {
			return ProcedureProfile(2, 10, 2_000_000, cfg.Seed)
		}},
		{"reduction", Reduction},
		{"inlining", func() (*Table, error) { return Inlining(8) }},
		{"shrink", func() (*Table, error) { return Shrink(cfg.ShrinkMaxN, cfg.ShrinkFullN) }},
		{"shrink-explore", func() (*Table, error) { return ShrinkExplore(exOpts) }},
	}
	for _, s := range steps {
		tbl, err := s.run()
		if err != nil {
			return nil, fmt.Errorf("experiment %s: %w", s.name, err)
		}
		tables = append(tables, tbl)
	}
	return tables, nil
}

// RenderAll runs every experiment and renders the tables to w.
func RenderAll(w io.Writer, cfg Config) error {
	tables, err := All(cfg)
	if err != nil {
		return err
	}
	for _, t := range tables {
		if err := t.Render(w); err != nil {
			return err
		}
	}
	return nil
}
