// Package repro is a complete Go implementation of "Breaking through the
// Ω(n)-space barrier: Population Protocols Decide Double-exponential
// Thresholds" (Philipp Czerner, brief announcement at PODC 2023).
//
// The library lives under internal/ (see DESIGN.md for the inventory);
// runnable entry points are the commands under cmd/ and the programs under
// examples/. The root package carries the benchmark harness: one benchmark
// per reproduced table/figure (bench_test.go) plus design-choice ablations
// (ablation_bench_test.go).
package repro
