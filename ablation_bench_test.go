package repro_test

// Ablation benchmarks for the design choices DESIGN.md calls out:
//
//   - restart hinting (the "standard technique" of §2): how much does the
//     structured restart distribution buy over pure uniform restarts?
//   - detect truth bias: the random walk inside Large is symmetric at 0.5
//     and drifts upward as the oracle gets more truthful — decision steps
//     should fall as TruthProb rises;
//   - scheduler choice on converted protocols: uniform random pairing pays
//     Θ(m²) interactions per machine step against the transition-fair
//     scheduler's O(1) steps.

import (
	"fmt"
	"testing"

	"repro/internal/analysis"
	"repro/internal/compile"
	"repro/internal/convert"
	"repro/internal/core"
	"repro/internal/popprog"
	"repro/internal/protocol"
	"repro/internal/sched"
)

// BenchmarkAblationRestartHint decides m = k(1) = 2 with varying hint
// probability. With 5 registers and 2 agents the uniform oracle still finds
// good configurations, so the ablation is measurable without hints.
func BenchmarkAblationRestartHint(b *testing.B) {
	c, err := core.New(1)
	if err != nil {
		b.Fatal(err)
	}
	for _, hintProb := range []float64{0, 0.1, 0.5} {
		b.Run(fmt.Sprintf("hint=%.1f", hintProb), func(b *testing.B) {
			var restarts, steps int64
			for i := 0; i < b.N; i++ {
				res, err := popprog.DecideTotal(c.Program, 2, popprog.DecideOptions{
					Seed: int64(i), Budget: 2_000_000, TruthProb: 0.8, Attempts: 8,
					RestartHint: c.RestartHint(), HintProb: hintProb,
				})
				if err != nil {
					b.Fatal(err)
				}
				if !res.Output {
					b.Fatal("m=2 must be accepted")
				}
				restarts += res.Restarts
				steps += res.Steps
			}
			b.ReportMetric(float64(restarts)/float64(b.N), "restarts/decision")
			b.ReportMetric(float64(steps)/float64(b.N), "steps/decision")
		})
	}
}

// BenchmarkAblationTruthProb decides m = k(2) = 10 with varying detect
// truth bias.
func BenchmarkAblationTruthProb(b *testing.B) {
	c, err := core.New(2)
	if err != nil {
		b.Fatal(err)
	}
	for _, truth := range []float64{0.5, 0.7, 0.9} {
		b.Run(fmt.Sprintf("truth=%.1f", truth), func(b *testing.B) {
			var restarts int64
			for i := 0; i < b.N; i++ {
				res, err := popprog.DecideTotal(c.Program, 10, popprog.DecideOptions{
					Seed: int64(i), Budget: 8_000_000, TruthProb: truth, Attempts: 8,
					RestartHint: c.RestartHint(), HintProb: 0.3,
				})
				if err != nil {
					b.Fatal(err)
				}
				if !res.Output {
					b.Fatal("m=10 must be accepted")
				}
				restarts += res.Restarts
			}
			b.ReportMetric(float64(restarts)/float64(b.N), "restarts/decision")
		})
	}
}

// BenchmarkReduction measures the support-closure reduction (E14) on the
// converted Figure 1 protocol.
func BenchmarkReduction(b *testing.B) {
	machine, err := compile.Compile(popprog.Figure1Program())
	if err != nil {
		b.Fatal(err)
	}
	res, err := convert.Convert(machine)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reduced, removed, err := protocol.Reduce(res.Protocol)
		if err != nil {
			b.Fatal(err)
		}
		if removed == 0 {
			b.Fatal("no reduction")
		}
		b.ReportMetric(float64(reduced.NumStates()), "reduced-states")
	}
}

// BenchmarkInlinedCount measures the inlining ablation metric (E15).
func BenchmarkInlinedCount(b *testing.B) {
	c, err := core.New(6)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		inlined, err := analysis.InlinedInstructionCount(c.Program)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(inlined), "inlined-instructions")
	}
}

// BenchmarkAblationScheduler compares schedulers on a converted protocol:
// interactions until the leader election completes.
func BenchmarkAblationScheduler(b *testing.B) {
	prog := &popprog.Program{
		Name:      "ge1",
		Registers: []string{"x"},
		Procedures: []*popprog.Procedure{{
			Name: "Main",
			Body: []popprog.Stmt{
				popprog.SetOF{Value: false},
				popprog.While{Cond: popprog.Not{C: popprog.Detect{Reg: 0}}},
				popprog.SetOF{Value: true},
				popprog.While{Cond: popprog.True{}},
			},
		}},
	}
	machine, err := compile.Compile(prog)
	if err != nil {
		b.Fatal(err)
	}
	res, err := convert.Convert(machine)
	if err != nil {
		b.Fatal(err)
	}
	p := res.Protocol
	m := int64(res.NumPointers) + 3
	schedulers := map[string]func(seed int64) sched.Scheduler{
		"random-pair":     func(seed int64) sched.Scheduler { return sched.NewRandomPair(p, sched.NewRand(seed)) },
		"transition-fair": func(seed int64) sched.Scheduler { return sched.NewTransitionFair(p, sched.NewRand(seed)) },
	}
	for name, mk := range schedulers {
		b.Run(name, func(b *testing.B) {
			var total int64
			for i := 0; i < b.N; i++ {
				c, err := p.InitialConfig(m)
				if err != nil {
					b.Fatal(err)
				}
				s := mk(int64(i))
				steps := int64(0)
				for !res.Elected(c) {
					s.Step(c)
					steps++
					if steps > 50_000_000 {
						b.Fatal("election did not converge")
					}
				}
				total += steps
			}
			b.ReportMetric(float64(total)/float64(b.N), "steps-to-elect")
		})
	}
}
