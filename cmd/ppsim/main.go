// Command ppsim simulates the repository's protocols and programs.
//
// Usage:
//
//	ppsim -target majority -input 12,5
//	ppsim -target unary:9 -input 11
//	ppsim -target binary:4 -input 20
//	ppsim -target figure1 -input 5
//	ppsim -target czerner:2 -input 10
//	ppsim -target equality:2 -input 10
//	ppsim -program path/to/file.pop -input 5
//
// Protocol targets (majority, unary:k, binary:j, remainder:m) run under the
// uniform random-pair scheduler and report interactions and parallel time.
// -batch N enables the batched fast-path scheduler (distribution-preserving
// null-interaction skipping); -kernel selects the interaction kernel
// instead: exact (per-step law with geometric null skipping), batch (the
// count-based collision kernel advancing whole tau-leap rounds — the
// large-n fast path), fluid (deterministic mean-field ODE integration),
// langevin (mean-field drift plus 1/√m chemical Langevin noise), or auto
// (the full simulation ladder: exact below 4096 agents, tau-leap rounds up
// to 65,536, then the hybrid fluid/discrete ladder — the only kernel that
// reaches m = 10¹²⁺). -fluid-floor tunes the ladder's regime switch-over
// bound (agents per consumed species required for the fluid tier).
// Any -kernel implies batched driving with a default chunk of 65,536 steps
// when -batch is 0. -window and -qperiod override the stable-window and
// quiescence-check lengths for large-n runs. -runs R repeats the run R
// times with seeds seed..seed+R-1 and reports convergence summary
// statistics, optionally in parallel with -workers W (results are identical
// for any worker count).
// -topology restricts interactions to a graph (clique, ring, grid[:RxC],
// powerlaw[:k]) driven per-step by an edge-selection policy chosen with
// -topo-policy (random, roundrobin, starvation, adversary); -crash, -revive
// and -join enable per-step agent fault injection on topology runs.
// Program targets (figure1, czerner:n, equality:n, or a .pop file given
// with -program) run the population-program interpreter with a seeded
// random oracle and report the stabilised output flag, steps and restarts.
//
// Telemetry: -metrics prints a JSON snapshot of the scheduler/runner
// counters to stderr on exit, -metrics-interval emits periodic snapshot
// lines while running, and -pprof serves net/http/pprof and expvar for live
// profiling. Telemetry is read-only: simulation output is byte-identical
// with and without it.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/obs/obsflag"
	"repro/internal/popprog"
	"repro/internal/protocol"
	"repro/internal/sched"
	"repro/internal/simulate"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole binary behind a testable seam: it parses and validates
// args, executes, and returns the process exit code (0 ok, 1 runtime
// failure, 2 usage error — invalid flag values print the error followed by
// the usage text).
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ppsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	target := fs.String("target", "majority",
		"what to simulate: majority | unary:k | binary:j | remainder:m | figure1 | czerner:n | equality:n")
	programPath := fs.String("program", "", "path to a .pop population program (overrides -target)")
	input := fs.String("input", "", "comma-separated input counts (protocols) or a total (programs)")
	seed := fs.Int64("seed", 1, "PRNG seed")
	budget := fs.Int64("budget", 0, "step budget (0 = default)")
	scheduler := fs.String("scheduler", "pair", "protocol scheduler: pair | batch | fair")
	batch := fs.Int64("batch", 0,
		"batched fast-path chunk size for protocol targets (0 = per-step; implies -scheduler batch when set)")
	kernel := fs.String("kernel", "",
		"interaction kernel for protocol targets: exact | batch | fluid | langevin | auto (overrides -scheduler; implies batching)")
	fluidFloor := fs.Int64("fluid-floor", 0,
		"agents per consumed species required for the auto kernel's fluid tier (0 = default 16384)")
	window := fs.Int64("window", 0, "stable-window length for protocol targets (0 = default 10000)")
	qperiod := fs.Int64("qperiod", 0, "quiescence-check period for protocol targets (0 = default 1000)")
	runs := fs.Int("runs", 1, "repeat protocol runs this many times (seeds seed..seed+runs-1) and report summary statistics")
	workers := fs.Int("workers", 1, "worker goroutines for -runs > 1 (results are identical for any worker count)")
	topology := fs.String("topology", "",
		"restrict interactions to a graph for protocol targets: clique | ring | grid[:RxC] | powerlaw[:k] (per-step; excludes -kernel/-batch)")
	topoPolicy := fs.String("topo-policy", "",
		"edge-selection policy for -topology: random | roundrobin | starvation | adversary (default random)")
	crash := fs.Float64("crash", 0, "per-step agent crash probability for -topology runs")
	revive := fs.Float64("revive", 0, "per-step revive probability for crashed agents (-topology runs)")
	join := fs.Float64("join", 0, "per-step join probability; new agents enter the protocol's first state (-topology runs)")
	telemetry := obsflag.Register(fs)
	if err := fs.Parse(args); err != nil {
		return 2 // the flag package has already printed the error and usage
	}

	usageErr := func(err error) int {
		fmt.Fprintln(stderr, "ppsim:", err)
		fs.Usage()
		return 2
	}
	switch {
	case *runs < 1:
		return usageErr(fmt.Errorf("-runs must be ≥ 1, got %d", *runs))
	case *workers < 1:
		return usageErr(fmt.Errorf("-workers must be ≥ 1, got %d", *workers))
	case *batch < 0:
		return usageErr(fmt.Errorf("-batch must be ≥ 0, got %d", *batch))
	case *budget < 0:
		return usageErr(fmt.Errorf("-budget must be ≥ 0, got %d", *budget))
	case *window < 0:
		return usageErr(fmt.Errorf("-window must be ≥ 0, got %d", *window))
	case *qperiod < 0:
		return usageErr(fmt.Errorf("-qperiod must be ≥ 0, got %d", *qperiod))
	case !validKernel(*kernel):
		return usageErr(fmt.Errorf("-kernel must be one of %q, %q, %q, %q, %q, got %q",
			simulate.KernelExact, simulate.KernelBatch, simulate.KernelFluid,
			simulate.KernelLangevin, simulate.KernelAuto, *kernel))
	case *kernel != "" && *scheduler == "fair":
		return usageErr(errors.New("-kernel only applies to the pair/batch schedulers, not fair"))
	case *fluidFloor < 0:
		return usageErr(fmt.Errorf("-fluid-floor must be ≥ 0, got %d", *fluidFloor))
	case *input == "":
		return usageErr(errors.New("-input is required"))
	}
	var topoSpec *sched.TopologySpec
	var faults *sched.Faults
	if *topology != "" {
		spec, err := sched.ParseTopologySpec(*topology)
		if err != nil {
			return usageErr(err)
		}
		switch *topoPolicy {
		case "", sched.PolicyRandom, sched.PolicyRoundRobin, sched.PolicyStarvation, sched.PolicyAdversary:
			spec.Policy = *topoPolicy
		default:
			return usageErr(fmt.Errorf("-topo-policy must be one of %q, %q, %q, %q, got %q",
				sched.PolicyRandom, sched.PolicyRoundRobin, sched.PolicyStarvation,
				sched.PolicyAdversary, *topoPolicy))
		}
		switch {
		case *kernel != "" || *batch > 0:
			return usageErr(errors.New("-topology excludes -kernel and -batch (graph schedulers are per-step)"))
		case *scheduler != "pair":
			return usageErr(errors.New("-topology replaces -scheduler (leave it at the default)"))
		}
		topoSpec = &spec
	} else if *topoPolicy != "" {
		return usageErr(errors.New("-topo-policy requires -topology"))
	}
	if *crash != 0 || *revive != 0 || *join != 0 {
		if topoSpec == nil {
			return usageErr(errors.New("-crash/-revive/-join require -topology"))
		}
		faults = &sched.Faults{Crash: *crash, Revive: *revive, Join: *join}
		if err := faults.Validate(); err != nil {
			return usageErr(err)
		}
	}
	stopTelemetry, err := telemetry.Start(stderr)
	if err != nil {
		return usageErr(err)
	}
	defer stopTelemetry()

	counts, err := parseCounts(*input)
	if err != nil {
		fmt.Fprintln(stderr, "ppsim:", err)
		return 1
	}
	so := simOptions{
		scheduler:  *scheduler,
		seed:       *seed,
		budget:     *budget,
		batch:      *batch,
		kernel:     *kernel,
		fluidFloor: *fluidFloor,
		window:     *window,
		qperiod:    *qperiod,
		runs:       *runs,
		workers:    *workers,
		topo:       topoSpec,
		faults:     faults,
	}
	if err := dispatch(stdout, *target, *programPath, counts, so); err != nil {
		fmt.Fprintln(stderr, "ppsim:", err)
		return 1
	}
	return 0
}

// dispatch routes to the protocol or program simulation paths.
func dispatch(w io.Writer, target, programPath string, counts []int64, so simOptions) error {
	if programPath != "" {
		src, err := os.ReadFile(programPath)
		if err != nil {
			return err
		}
		prog, err := popprog.Parse(string(src))
		if err != nil {
			return err
		}
		if len(counts) != 1 {
			return errors.New("-program needs -input m (a single total)")
		}
		return simulateProgram(w, prog, counts[0], so.seed, so.budget, popprog.DecideOptions{})
	}

	name, param, err := splitTarget(target)
	if err != nil {
		return err
	}
	switch name {
	case "majority":
		p, err := baseline.Majority()
		if err != nil {
			return err
		}
		if len(counts) != 2 {
			return errors.New("majority needs -input x,y")
		}
		return simulateProtocol(w, p, counts, so)
	case "unary":
		p, err := baseline.UnaryThreshold(param)
		if err != nil {
			return err
		}
		if len(counts) != 1 {
			return errors.New("unary needs -input m")
		}
		return simulateProtocol(w, p, counts, so)
	case "binary":
		p, err := baseline.BinaryThreshold(int(param))
		if err != nil {
			return err
		}
		if len(counts) != 1 {
			return errors.New("binary needs -input m")
		}
		return simulateProtocol(w, p, counts, so)
	case "remainder":
		if param < 1 {
			return errors.New("remainder needs a positive modulus, e.g. remainder:3")
		}
		p, err := baseline.Remainder(param, 0)
		if err != nil {
			return err
		}
		if len(counts) != 1 {
			return errors.New("remainder needs -input m")
		}
		return simulateProtocol(w, p, counts, so)
	case "figure1":
		if len(counts) != 1 {
			return errors.New("figure1 needs -input m")
		}
		return simulateProgram(w, popprog.Figure1Program(), counts[0], so.seed, so.budget, popprog.DecideOptions{})
	case "czerner", "equality":
		var c *core.Construction
		var err error
		if name == "czerner" {
			c, err = core.New(int(param))
		} else {
			c, err = core.NewEquality(int(param))
		}
		if err != nil {
			return err
		}
		if len(counts) != 1 {
			return errors.New("czerner/equality needs -input m")
		}
		fmt.Fprintf(w, "construction: n=%d, threshold k=%s, program size %d\n",
			c.Levels, c.K, c.Program.Size())
		return simulateProgram(w, c.Program, counts[0], so.seed, so.budget, popprog.DecideOptions{
			TruthProb: 0.85, RestartHint: c.RestartHint(), HintProb: 0.3,
		})
	default:
		return fmt.Errorf("unknown target %q", target)
	}
}

func splitTarget(t string) (string, int64, error) {
	parts := strings.SplitN(t, ":", 2)
	if len(parts) == 1 {
		return parts[0], 0, nil
	}
	v, err := strconv.ParseInt(parts[1], 10, 64)
	if err != nil {
		return "", 0, fmt.Errorf("target parameter %q: %w", parts[1], err)
	}
	return parts[0], v, nil
}

func parseCounts(s string) ([]int64, error) {
	parts := strings.Split(s, ",")
	out := make([]int64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("input %q: %w", p, err)
		}
		out[i] = v
	}
	return out, nil
}

// simOptions collects the protocol-simulation knobs of the CLI.
type simOptions struct {
	scheduler       string
	seed, budget    int64
	batch           int64
	kernel          string
	fluidFloor      int64
	window, qperiod int64
	runs, workers   int
	topo            *sched.TopologySpec
	faults          *sched.Faults
}

// validKernel reports whether k is an accepted -kernel value (empty keeps
// the -scheduler/-batch selection).
func validKernel(k string) bool {
	switch k {
	case "", simulate.KernelExact, simulate.KernelBatch,
		simulate.KernelFluid, simulate.KernelLangevin, simulate.KernelAuto:
		return true
	}
	return false
}

func simulateProtocol(w io.Writer, p *protocol.Protocol, counts []int64, so simOptions) error {
	if so.batch > 0 && so.scheduler == "pair" {
		so.scheduler = "batch"
	}
	opts := simulate.Options{
		MaxSteps:         so.budget,
		StableWindow:     so.window,
		QuiescencePeriod: so.qperiod,
		BatchSize:        so.batch,
		Kernel:           so.kernel,
		FluidFloor:       so.fluidFloor,
		Workers:          so.workers,
		Topology:         so.topo,
		Faults:           so.faults,
	}
	if so.runs > 1 {
		if so.scheduler == "fair" {
			return errors.New("-runs > 1 only supports the pair/batch schedulers")
		}
		samples, err := simulate.MeasureConvergenceSamples(p, counts, so.runs, so.seed, opts)
		if err != nil {
			return err
		}
		var m int64
		for _, c := range counts {
			m += c
		}
		fmt.Fprintf(w, "protocol:      %s (%d states, %d transitions)\n",
			p.Name, p.NumStates(), len(p.Transitions))
		fmt.Fprintf(w, "input:         %v (m = %d)\n", counts, m)
		fmt.Fprintf(w, "runs:          %d (workers %d, batch %d)\n", so.runs, so.workers, so.batch)
		if so.kernel != "" {
			fmt.Fprintf(w, "kernel:        %s\n", so.kernel)
		}
		printTopology(w, so)
		fmt.Fprintf(w, "interactions:  %v\n", simulate.Summarise(samples))
		return nil
	}
	rng := sched.NewRand(so.seed)
	var s sched.Scheduler
	if so.topo != nil {
		var m int64
		for _, c := range counts {
			m += c
		}
		ts, err := so.topo.NewScheduler(p, rng, so.faults, m)
		if err != nil {
			return err
		}
		s = ts
	} else if so.kernel != "" {
		var m int64
		for _, c := range counts {
			m += c
		}
		ks, err := simulate.NewKernelScheduler(p, rng, so.kernel, m)
		if err != nil {
			return err
		}
		s = ks
	} else {
		switch so.scheduler {
		case "pair":
			s = sched.NewRandomPair(p, rng)
		case "batch":
			s = sched.NewBatchRandomPair(p, rng)
		case "fair":
			s = sched.NewTransitionFair(p, rng)
		default:
			return fmt.Errorf("unknown scheduler %q", so.scheduler)
		}
	}
	res, err := simulate.RunInput(p, counts, s, opts)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "protocol:      %s (%d states, %d transitions)\n",
		p.Name, p.NumStates(), len(p.Transitions))
	fmt.Fprintf(w, "input:         %v (m = %d)\n", counts, res.Final.Size())
	if so.kernel != "" {
		fmt.Fprintf(w, "kernel:        %s\n", so.kernel)
	}
	printTopology(w, so)
	fmt.Fprintf(w, "output:        %v\n", res.Output)
	fmt.Fprintf(w, "interactions:  %d (%d effective)\n", res.Steps, res.EffectiveSteps)
	fmt.Fprintf(w, "parallel time: %.1f\n", res.ParallelTime())
	fmt.Fprintf(w, "quiescent:     %v\n", res.Quiescent)
	return nil
}

// printTopology reports the interaction-graph restriction, if any.
func printTopology(w io.Writer, so simOptions) {
	if so.topo == nil {
		return
	}
	policy := so.topo.Policy
	if policy == "" {
		policy = sched.PolicyRandom
	}
	fmt.Fprintf(w, "topology:      %s (policy %s)\n", so.topo.Kind, policy)
	if so.faults != nil {
		fmt.Fprintf(w, "faults:        crash %g, revive %g, join %g\n",
			so.faults.Crash, so.faults.Revive, so.faults.Join)
	}
}

func simulateProgram(w io.Writer, prog *popprog.Program, total, seed, budget int64, opts popprog.DecideOptions) error {
	opts.Seed = seed
	opts.Budget = budget
	res, err := popprog.DecideTotal(prog, total, opts)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "program:  %s (size %d: %d registers, %d instructions, swap-size %d)\n",
		prog.Name, prog.Size(), len(prog.Registers), prog.InstructionCount(), prog.SwapSize())
	fmt.Fprintf(w, "total:    %d agents\n", total)
	fmt.Fprintf(w, "output:   %v\n", res.Output)
	fmt.Fprintf(w, "steps:    %d\n", res.Steps)
	fmt.Fprintf(w, "restarts: %d\n", res.Restarts)
	fmt.Fprintf(w, "halted:   %v\n", res.Halted)
	return nil
}
