package main

import (
	"testing"

	"repro/internal/baseline"
	"repro/internal/popprog"
)

func TestSplitTarget(t *testing.T) {
	cases := []struct {
		in    string
		name  string
		param int64
		ok    bool
	}{
		{"majority", "majority", 0, true},
		{"unary:9", "unary", 9, true},
		{"czerner:3", "czerner", 3, true},
		{"unary:x", "", 0, false},
	}
	for _, tc := range cases {
		name, param, err := splitTarget(tc.in)
		if tc.ok && err != nil {
			t.Fatalf("%q: %v", tc.in, err)
		}
		if !tc.ok {
			if err == nil {
				t.Fatalf("%q: expected error", tc.in)
			}
			continue
		}
		if name != tc.name || param != tc.param {
			t.Fatalf("%q: got (%q, %d)", tc.in, name, param)
		}
	}
}

func TestParseCounts(t *testing.T) {
	got, err := parseCounts("12, 5")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 12 || got[1] != 5 {
		t.Fatalf("parseCounts = %v", got)
	}
	if _, err := parseCounts("1,x"); err == nil {
		t.Fatal("accepted a non-numeric count")
	}
}

func TestSimulatePathsSmoke(t *testing.T) {
	// Drive the protocol and program paths end to end (output to stdout).
	p, err := baseline.Majority()
	if err != nil {
		t.Fatal(err)
	}
	base := simOptions{scheduler: "pair", seed: 1, runs: 1, workers: 1}
	if err := simulateProtocol(p, []int64{6, 3}, base); err != nil {
		t.Fatal(err)
	}
	fair := base
	fair.scheduler = "fair"
	if err := simulateProtocol(p, []int64{6, 3}, fair); err != nil {
		t.Fatal(err)
	}
	batched := base
	batched.batch = 64
	if err := simulateProtocol(p, []int64{6, 3}, batched); err != nil {
		t.Fatal(err)
	}
	multi := base
	multi.runs = 4
	multi.workers = 2
	multi.batch = 32
	if err := simulateProtocol(p, []int64{6, 3}, multi); err != nil {
		t.Fatal(err)
	}
	multiFair := multi
	multiFair.scheduler = "fair"
	multiFair.batch = 0
	if err := simulateProtocol(p, []int64{6, 3}, multiFair); err == nil {
		t.Fatal("accepted -runs > 1 with the fair scheduler")
	}
	bogus := base
	bogus.scheduler = "bogus"
	if err := simulateProtocol(p, []int64{6, 3}, bogus); err == nil {
		t.Fatal("accepted an unknown scheduler")
	}
	if err := simulateProgram(popprog.Figure1Program(), 5, 1, 300_000,
		popprog.DecideOptions{}); err != nil {
		t.Fatal(err)
	}
}
