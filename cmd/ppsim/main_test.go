package main

import (
	"bytes"
	"encoding/json"
	"io"
	"strings"
	"testing"

	"repro/internal/baseline"
	"repro/internal/obs"
	"repro/internal/popprog"
)

func TestSplitTarget(t *testing.T) {
	cases := []struct {
		in    string
		name  string
		param int64
		ok    bool
	}{
		{"majority", "majority", 0, true},
		{"unary:9", "unary", 9, true},
		{"czerner:3", "czerner", 3, true},
		{"unary:x", "", 0, false},
	}
	for _, tc := range cases {
		name, param, err := splitTarget(tc.in)
		if tc.ok && err != nil {
			t.Fatalf("%q: %v", tc.in, err)
		}
		if !tc.ok {
			if err == nil {
				t.Fatalf("%q: expected error", tc.in)
			}
			continue
		}
		if name != tc.name || param != tc.param {
			t.Fatalf("%q: got (%q, %d)", tc.in, name, param)
		}
	}
}

func TestParseCounts(t *testing.T) {
	got, err := parseCounts("12, 5")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 12 || got[1] != 5 {
		t.Fatalf("parseCounts = %v", got)
	}
	if _, err := parseCounts("1,x"); err == nil {
		t.Fatal("accepted a non-numeric count")
	}
}

func TestSimulatePathsSmoke(t *testing.T) {
	// Drive the protocol and program paths end to end.
	p, err := baseline.Majority()
	if err != nil {
		t.Fatal(err)
	}
	base := simOptions{scheduler: "pair", seed: 1, runs: 1, workers: 1}
	if err := simulateProtocol(io.Discard, p, []int64{6, 3}, base); err != nil {
		t.Fatal(err)
	}
	fair := base
	fair.scheduler = "fair"
	if err := simulateProtocol(io.Discard, p, []int64{6, 3}, fair); err != nil {
		t.Fatal(err)
	}
	batched := base
	batched.batch = 64
	if err := simulateProtocol(io.Discard, p, []int64{6, 3}, batched); err != nil {
		t.Fatal(err)
	}
	multi := base
	multi.runs = 4
	multi.workers = 2
	multi.batch = 32
	if err := simulateProtocol(io.Discard, p, []int64{6, 3}, multi); err != nil {
		t.Fatal(err)
	}
	multiFair := multi
	multiFair.scheduler = "fair"
	multiFair.batch = 0
	if err := simulateProtocol(io.Discard, p, []int64{6, 3}, multiFair); err == nil {
		t.Fatal("accepted -runs > 1 with the fair scheduler")
	}
	bogus := base
	bogus.scheduler = "bogus"
	if err := simulateProtocol(io.Discard, p, []int64{6, 3}, bogus); err == nil {
		t.Fatal("accepted an unknown scheduler")
	}
	if err := simulateProgram(io.Discard, popprog.Figure1Program(), 5, 1, 300_000,
		popprog.DecideOptions{}); err != nil {
		t.Fatal(err)
	}
	for _, kernel := range []string{"exact", "batch", "fluid", "langevin", "auto"} {
		k := base
		k.kernel = kernel
		if err := simulateProtocol(io.Discard, p, []int64{6, 3}, k); err != nil {
			t.Fatalf("kernel %q: %v", kernel, err)
		}
		k.runs = 3
		k.workers = 2
		if err := simulateProtocol(io.Discard, p, []int64{6, 3}, k); err != nil {
			t.Fatalf("kernel %q, multi-run: %v", kernel, err)
		}
	}
}

// TestRunKernelFlag drives the -kernel flag end to end and pins that the
// batch kernel's output is deterministic for a fixed seed.
func TestRunKernelFlag(t *testing.T) {
	var first string
	for i := 0; i < 2; i++ {
		var stdout, stderr bytes.Buffer
		code := run([]string{"-target", "majority", "-input", "80,41", "-seed", "9",
			"-kernel", "batch", "-window", "200", "-qperiod", "500"}, &stdout, &stderr)
		if code != 0 {
			t.Fatalf("exit code = %d\nstderr: %s", code, stderr.String())
		}
		out := stdout.String()
		if !strings.Contains(out, "output:") {
			t.Fatalf("missing output line:\n%s", out)
		}
		if i == 0 {
			first = out
		} else if out != first {
			t.Fatalf("batch kernel output not reproducible:\n--- run 1 ---\n%s--- run 2 ---\n%s", first, out)
		}
	}
}

// TestRunFluidLadderTrillion drives the simulation ladder end to end from
// the CLI: majority at m = 10¹² through -kernel auto (forced-fluid regime)
// with an explicit -fluid-floor, finishing with the exact majority answer.
func TestRunFluidLadderTrillion(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-target", "majority", "-input", "550000000000,450000000000",
		"-seed", "3", "-kernel", "auto", "-fluid-floor", "32768", "-budget", "4611686018427387904"},
		&stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d\nstderr: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "output:        true") {
		t.Fatalf("m = 10¹² majority did not decide true:\n%s", out)
	}
	if !strings.Contains(out, "kernel:        auto") {
		t.Fatalf("missing kernel line:\n%s", out)
	}
}

// TestRunFlagValidation pins the CLI contract: invalid flag values exit
// non-zero with an error plus the usage text — no panic, no silent clamp.
// run() is main() minus os.Exit, so the returned code is the exit code.
func TestRunFlagValidation(t *testing.T) {
	cases := []struct {
		name     string
		args     []string
		wantCode int
		wantErr  string // substring of stderr
	}{
		{"zero runs", []string{"-target", "majority", "-input", "6,3", "-runs", "0"}, 2, "-runs must be ≥ 1"},
		{"negative runs", []string{"-target", "majority", "-input", "6,3", "-runs", "-2"}, 2, "-runs must be ≥ 1"},
		{"zero workers", []string{"-target", "majority", "-input", "6,3", "-workers", "0"}, 2, "-workers must be ≥ 1"},
		{"negative batch", []string{"-target", "majority", "-input", "6,3", "-batch", "-1"}, 2, "-batch must be ≥ 0"},
		{"negative budget", []string{"-target", "majority", "-input", "6,3", "-budget", "-5"}, 2, "-budget must be ≥ 0"},
		{"negative window", []string{"-target", "majority", "-input", "6,3", "-window", "-1"}, 2, "-window must be ≥ 0"},
		{"negative qperiod", []string{"-target", "majority", "-input", "6,3", "-qperiod", "-1"}, 2, "-qperiod must be ≥ 0"},
		{"bogus kernel", []string{"-target", "majority", "-input", "6,3", "-kernel", "turbo"}, 2, "-kernel must be one of"},
		{"negative fluid floor", []string{"-target", "majority", "-input", "6,3", "-fluid-floor", "-1"}, 2, "-fluid-floor must be"},
		{"kernel with fair scheduler", []string{"-target", "majority", "-input", "6,3", "-kernel", "batch", "-scheduler", "fair"}, 2, "-kernel only applies"},
		{"missing input", []string{"-target", "majority"}, 2, "-input is required"},
		{"non-numeric flag", []string{"-runs", "x"}, 2, "invalid value"},
		{"unknown flag", []string{"-definitely-not-a-flag"}, 2, "flag provided but not defined"},
		{"negative metrics interval", []string{"-target", "majority", "-input", "6,3", "-metrics-interval", "-1s"}, 2, "-metrics-interval must be ≥ 0"},
		{"unknown target", []string{"-target", "nope", "-input", "3"}, 1, "unknown target"},
		{"bad input counts", []string{"-target", "majority", "-input", "6;3"}, 1, "input"},
		{"unknown topology", []string{"-target", "majority", "-input", "6,3", "-topology", "torus"}, 2, "unknown topology"},
		{"bad grid parameter", []string{"-target", "majority", "-input", "6,3", "-topology", "grid:axb"}, 2, "ROWSxCOLS"},
		{"bogus topo policy", []string{"-target", "majority", "-input", "6,3", "-topology", "ring", "-topo-policy", "chaos"}, 2, "-topo-policy must be one of"},
		{"policy without topology", []string{"-target", "majority", "-input", "6,3", "-topo-policy", "random"}, 2, "-topo-policy requires -topology"},
		{"topology with kernel", []string{"-target", "majority", "-input", "6,3", "-topology", "ring", "-kernel", "batch"}, 2, "-topology excludes -kernel"},
		{"topology with batch", []string{"-target", "majority", "-input", "6,3", "-topology", "ring", "-batch", "64"}, 2, "-topology excludes -kernel"},
		{"topology with fair scheduler", []string{"-target", "majority", "-input", "6,3", "-topology", "ring", "-scheduler", "fair"}, 2, "-topology replaces -scheduler"},
		{"faults without topology", []string{"-target", "majority", "-input", "6,3", "-crash", "0.1"}, 2, "require -topology"},
		{"crash rate out of range", []string{"-target", "majority", "-input", "6,3", "-topology", "ring", "-crash", "1.5"}, 2, "outside [0, 1]"},
		{"grid mismatch", []string{"-target", "majority", "-input", "6,3", "-topology", "grid:5x5"}, 1, "grid"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			code := run(tc.args, &stdout, &stderr)
			if code != tc.wantCode {
				t.Fatalf("exit code = %d, want %d\nstderr: %s", code, tc.wantCode, stderr.String())
			}
			if !strings.Contains(stderr.String(), tc.wantErr) {
				t.Fatalf("stderr missing %q:\n%s", tc.wantErr, stderr.String())
			}
			if tc.wantCode == 2 && !strings.Contains(stderr.String(), "Usage of ppsim") {
				t.Fatalf("usage-error stderr missing usage text:\n%s", stderr.String())
			}
		})
	}
}

// TestRunTopologyFlag drives -topology end to end: the run reports the
// graph and policy, converges, and is byte-reproducible for a fixed seed —
// including with fault injection on.
func TestRunTopologyFlag(t *testing.T) {
	args := [][]string{
		{"-target", "majority", "-input", "12,5", "-topology", "clique", "-topo-policy", "adversary", "-seed", "3"},
		{"-target", "unary:1", "-input", "24", "-topology", "powerlaw", "-topo-policy", "roundrobin",
			"-crash", "0.02", "-revive", "0.3", "-runs", "3", "-seed", "5"},
		{"-target", "unary:1", "-input", "16", "-topology", "grid:4x4", "-join", "0.001", "-seed", "7"},
	}
	for _, a := range args {
		var first string
		for i := 0; i < 2; i++ {
			var stdout, stderr bytes.Buffer
			if code := run(a, &stdout, &stderr); code != 0 {
				t.Fatalf("%v: exit code %d\nstderr: %s", a, code, stderr.String())
			}
			if !strings.Contains(stdout.String(), "topology:") {
				t.Fatalf("%v: missing topology line:\n%s", a, stdout.String())
			}
			if i == 0 {
				first = stdout.String()
			} else if stdout.String() != first {
				t.Fatalf("%v: topology run not reproducible:\n--- 1 ---\n%s--- 2 ---\n%s",
					a, first, stdout.String())
			}
		}
	}
}

// TestRunMetricsSnapshot runs a seeded simulation with -metrics and checks
// the stderr snapshot is well-formed JSON carrying live scheduler and
// runner counters (the acceptance criterion for ppsim -metrics).
func TestRunMetricsSnapshot(t *testing.T) {
	defer obs.Disable() // run()'s telemetry stop disables too; belt and braces
	var stdout, stderr bytes.Buffer
	code := run([]string{"-target", "majority", "-input", "20,11", "-seed", "7",
		"-runs", "4", "-workers", "2", "-batch", "64", "-metrics"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d\nstderr: %s", code, stderr.String())
	}
	lines := strings.Split(strings.TrimSpace(stderr.String()), "\n")
	last := lines[len(lines)-1]
	var snap obs.Snap
	if err := json.Unmarshal([]byte(last), &snap); err != nil {
		t.Fatalf("-metrics snapshot is not valid JSON: %v\n%s", err, last)
	}
	if snap.Sched.Steps == 0 {
		t.Fatalf("snapshot recorded no scheduler steps: %s", last)
	}
	if snap.Sim.RunsFinished != 4 {
		t.Fatalf("RunsFinished = %d, want 4: %s", snap.Sim.RunsFinished, last)
	}
	if snap.Sched.NullsSkipped == 0 {
		t.Fatalf("batched run skipped no nulls: %s", last)
	}
	// Telemetry must not leak into or alter stdout.
	if strings.Contains(stdout.String(), "{") {
		t.Fatalf("JSON leaked into stdout:\n%s", stdout.String())
	}
	// The same invocation with metrics off must produce identical stdout.
	var stdout2, stderr2 bytes.Buffer
	if code := run([]string{"-target", "majority", "-input", "20,11", "-seed", "7",
		"-runs", "4", "-workers", "2", "-batch", "64"}, &stdout2, &stderr2); code != 0 {
		t.Fatalf("metrics-off rerun failed: %s", stderr2.String())
	}
	if stdout.String() != stdout2.String() {
		t.Fatalf("stdout differs with metrics on/off:\n--- on ---\n%s--- off ---\n%s",
			stdout.String(), stdout2.String())
	}
}
