// Command ppverify runs the exact, exhaustive verifications: it model-checks
// stable computation (bottom-SCC analysis under global fairness) for the
// repository's protocols and for the paper's construction compiled down to
// population machines.
//
// Usage:
//
//	ppverify [-max-agents N]
//	         [-targets majority,unary,binary,remainder,product,figure1,czerner1,equality1]
//	         [-mem-budget B] [-spill-dir DIR]
//	         [-metrics] [-metrics-interval D] [-pprof ADDR]
//
// -mem-budget caps the resident bytes of the explorer's variable-size
// structures (interner key log + frontier); beyond it sealed segments and
// frontier overflow spill to -spill-dir (default the system temp directory)
// and are streamed back, so verification scales to state spaces far beyond
// RAM. Results — verdicts, witnesses, error points — are bit-identical to
// the all-RAM run for any budget. -metrics prints a JSON telemetry snapshot
// (exploration levels, frontier widths, states/sec, interner occupancy,
// spill volume) to stderr on exit; -metrics-interval emits periodic
// snapshot lines while a verification is running; -pprof serves
// net/http/pprof and expvar for live profiling.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/baseline"
	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/multiset"
	"repro/internal/obs/obsflag"
	"repro/internal/popmachine"
	"repro/internal/popprog"
	"repro/internal/protocol"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ppverify:", err)
		os.Exit(1)
	}
}

func run() error {
	maxAgents := flag.Int64("max-agents", 5, "largest population size to verify exhaustively")
	targets := flag.String("targets", "majority,unary,binary,remainder,product,figure1,czerner1,equality1",
		"comma-separated verification targets")
	memBudget := flag.Int64("mem-budget", 0,
		"resident-byte budget for exploration; spill to disk beyond it (0 = all in RAM)")
	spillDir := flag.String("spill-dir", "",
		"directory for explorer spill files (default the system temp directory)")
	telemetry := obsflag.Register(flag.CommandLine)
	flag.Parse()
	if *memBudget < 0 {
		return fmt.Errorf("-mem-budget must be ≥ 0, got %d", *memBudget)
	}
	exOpts := explore.Options{MemBudget: *memBudget, SpillDir: *spillDir}

	stopTelemetry, err := telemetry.Start(os.Stderr)
	if err != nil {
		return err
	}
	defer stopTelemetry()

	for _, target := range strings.Split(*targets, ",") {
		target = strings.TrimSpace(target)
		start := time.Now()
		var err error
		switch target {
		case "majority":
			err = verifyMajority(*maxAgents, exOpts)
		case "unary":
			err = verifyUnary(*maxAgents, exOpts)
		case "binary":
			err = verifyBinary(*maxAgents, exOpts)
		case "remainder":
			err = verifyRemainder(*maxAgents, exOpts)
		case "product":
			err = verifyProduct(*maxAgents, exOpts)
		case "figure1":
			err = verifyFigure1(*maxAgents, exOpts)
		case "czerner1":
			err = verifyCzernerN1(*maxAgents, exOpts)
		case "equality1":
			err = verifyEqualityN1(*maxAgents, exOpts)
		default:
			return fmt.Errorf("unknown target %q", target)
		}
		if err != nil {
			fmt.Printf("%-10s FAILED: %v\n", target, err)
			return fmt.Errorf("verification failed for %s", target)
		}
		fmt.Printf("%-10s verified exactly (all fair runs, all inputs ≤ %d agents) in %v\n",
			target, *maxAgents, time.Since(start).Round(time.Millisecond))
	}
	return nil
}

func verifyMajority(maxAgents int64, opts explore.Options) error {
	p, err := baseline.Majority()
	if err != nil {
		return err
	}
	return explore.CheckDecidesParallel(p, baseline.MajorityPredicate, 1, maxAgents, runtime.NumCPU(), opts)
}

func verifyUnary(maxAgents int64, opts explore.Options) error {
	for k := int64(1); k <= 4; k++ {
		p, err := baseline.UnaryThreshold(k)
		if err != nil {
			return err
		}
		if err := explore.CheckDecidesParallel(p, baseline.ThresholdPredicate(k), 1, maxAgents, runtime.NumCPU(), opts); err != nil {
			return fmt.Errorf("k=%d: %w", k, err)
		}
	}
	return nil
}

func verifyBinary(maxAgents int64, opts explore.Options) error {
	for j := 0; j <= 2; j++ {
		p, err := baseline.BinaryThreshold(j)
		if err != nil {
			return err
		}
		k := int64(1) << uint(j)
		if err := explore.CheckDecidesParallel(p, baseline.ThresholdPredicate(k), 1, maxAgents, runtime.NumCPU(), opts); err != nil {
			return fmt.Errorf("j=%d: %w", j, err)
		}
	}
	return nil
}

// verifyMachineThreshold model-checks a compiled program: for every
// placement of every total ≤ maxAgents, all fair runs stabilise to
// pred(total). It runs on the parallel engine so a -mem-budget takes
// effect; results are bit-identical for any worker count and budget.
func verifyMachineThreshold(m *popmachine.Machine, pred func(int64) bool, maxAgents int64, opts explore.Options) error {
	sys := popmachine.System{M: m}
	opts.MaxStates = 8_000_000
	for total := int64(1); total <= maxAgents; total++ {
		want := pred(total)
		var initial []*popmachine.Config
		var buildErr error
		multiset.Enumerate(len(m.Registers), total, func(regs *multiset.Multiset) {
			cfg, err := m.InitialConfig(regs)
			if err != nil {
				buildErr = err
				return
			}
			initial = append(initial, cfg)
		})
		if buildErr != nil {
			return buildErr
		}
		res, err := explore.ExploreParallel[*popmachine.Config](sys, initial, opts)
		if err != nil {
			return fmt.Errorf("total=%d: %w", total, err)
		}
		if !res.StabilisesTo(want) {
			return fmt.Errorf("total=%d: outcomes %v, want all %v", total, res.Outcomes, want)
		}
	}
	return nil
}

func verifyFigure1(maxAgents int64, opts explore.Options) error {
	m, err := compile.Compile(popprog.Figure1Program())
	if err != nil {
		return err
	}
	return verifyMachineThreshold(m, func(t int64) bool { return t >= 4 && t < 7 }, maxAgents, opts)
}

func verifyCzernerN1(maxAgents int64, opts explore.Options) error {
	c, err := core.New(1)
	if err != nil {
		return err
	}
	m, err := compile.Compile(c.Program)
	if err != nil {
		return err
	}
	return verifyMachineThreshold(m, func(t int64) bool { return t >= 2 }, maxAgents, opts)
}

func verifyEqualityN1(maxAgents int64, opts explore.Options) error {
	c, err := core.NewEquality(1)
	if err != nil {
		return err
	}
	m, err := compile.Compile(c.Program)
	if err != nil {
		return err
	}
	return verifyMachineThreshold(m, func(t int64) bool { return t == 2 }, maxAgents, opts)
}

func verifyRemainder(maxAgents int64, opts explore.Options) error {
	for _, spec := range []struct{ m, r int64 }{{2, 0}, {3, 1}} {
		p, err := baseline.Remainder(spec.m, spec.r)
		if err != nil {
			return err
		}
		if err := explore.CheckDecides(p, baseline.RemainderPredicate(spec.m, spec.r),
			1, maxAgents, opts); err != nil {
			return fmt.Errorf("x ≡ %d (mod %d): %w", spec.r, spec.m, err)
		}
	}
	return nil
}

func verifyProduct(maxAgents int64, opts explore.Options) error {
	th, err := baseline.UnaryThreshold(3)
	if err != nil {
		return err
	}
	rem, err := baseline.Remainder(2, 0)
	if err != nil {
		return err
	}
	prod, err := protocol.Product("ge3-and-even", th, rem, protocol.OpAnd)
	if err != nil {
		return err
	}
	pred := protocol.ProductPredicate(
		baseline.ThresholdPredicate(3), baseline.RemainderPredicate(2, 0), protocol.OpAnd)
	return explore.CheckDecidesParallel(prod, pred, 1, maxAgents, runtime.NumCPU(), opts)
}
