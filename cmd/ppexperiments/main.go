// Command ppexperiments runs every experiment of the reproduction (E1–E15,
// see DESIGN.md) and prints the regenerated tables.
//
// Usage:
//
//	ppexperiments [-markdown] [-quick] [-seed N] [-batch N] [-workers W] [-explore-workers W]
//
// -quick shrinks every sweep to its smallest meaningful size (useful for
// smoke tests); -markdown emits the tables in the format EXPERIMENTS.md
// embeds. -batch and -workers route the convergence experiment through the
// batched fast-path scheduler and a run-level worker pool. -explore-workers
// sets the frontier-expansion worker count of the parallel model checker
// used by the exhaustive checks (0 = one per CPU); every table is
// bit-identical for any value.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ppexperiments:", err)
		os.Exit(1)
	}
}

func run() error {
	markdown := flag.Bool("markdown", false, "emit markdown tables")
	quick := flag.Bool("quick", false, "small sweeps for a fast smoke run")
	seed := flag.Int64("seed", 1, "seed for randomised experiments")
	batch := flag.Int64("batch", 0,
		"batched fast-path chunk size for the convergence experiment (0 = per-step)")
	workers := flag.Int("workers", 1,
		"worker goroutines for the convergence experiment's runs")
	exploreWorkers := flag.Int("explore-workers", 0,
		"frontier-expansion workers for the exhaustive model checks (0 = one per CPU)")
	flag.Parse()

	cfg := experiments.Config{Seed: *seed}
	if *quick {
		cfg = experiments.Config{
			Table1MaxN:        4,
			Figure1MaxTotal:   6,
			Figure1Exact:      false,
			Theorem3MaxN:      5,
			Theorem3SweepMaxN: 1,
			Theorem5MaxN:      4,
			ConvergenceSizes:  []int64{16, 32},
			ConvergenceRuns:   3,
			Seed:              *seed,
		}
	}
	cfg.ConvergenceBatch = *batch
	cfg.ConvergenceWorkers = *workers
	cfg.ExploreWorkers = *exploreWorkers

	tables, err := experiments.All(cfg)
	if err != nil {
		return err
	}
	for _, t := range tables {
		if *markdown {
			if err := t.Markdown(os.Stdout); err != nil {
				return err
			}
		} else {
			if err := t.Render(os.Stdout); err != nil {
				return err
			}
		}
	}
	return nil
}
