// Command ppexperiments runs every experiment of the reproduction (E1–E16,
// see DESIGN.md) and prints the regenerated tables.
//
// Usage:
//
//	ppexperiments [-markdown] [-quick] [-seed N] [-batch N] [-kernel K] [-workers W]
//	              [-explore-workers W] [-mem-budget B] [-spill-dir DIR] [-topology-m M]
//	              [-metrics] [-metrics-interval D] [-pprof ADDR]
//
// -quick shrinks every sweep to its smallest meaningful size (useful for
// smoke tests); -markdown emits the tables in the format EXPERIMENTS.md
// embeds. -batch and -workers route the convergence experiment through the
// batched fast-path scheduler and a run-level worker pool; -kernel selects
// its interaction kernel (exact | batch | fluid | langevin | auto — see
// ppsim). -explore-workers
// sets the frontier-expansion worker count of the parallel model checker
// used by the exhaustive checks (0 = one per CPU); every table is
// bit-identical for any value. -mem-budget caps the checker's resident
// bytes — beyond it the interner key log and frontier spill to -spill-dir
// (default the system temp directory) and are streamed back, still
// bit-identically (0 = all in RAM). -topology-m sizes the population of the
// topology-convergence sweep (E16).
//
// Telemetry: -metrics prints a JSON snapshot of the scheduler, runner and
// explorer counters to stderr on exit; -metrics-interval emits periodic
// snapshot lines so long explorations show live progress (frontier widths,
// states/sec, interner occupancy); -pprof serves net/http/pprof and expvar.
// Telemetry is read-only: the emitted tables are byte-identical with and
// without it (pinned by a differential test in internal/experiments).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/experiments"
	"repro/internal/obs/obsflag"
	"repro/internal/simulate"
)

// validKernel reports whether k is an accepted -kernel value (empty keeps
// the batch-size-driven scheduler selection).
func validKernel(k string) bool {
	switch k {
	case "", simulate.KernelExact, simulate.KernelBatch,
		simulate.KernelFluid, simulate.KernelLangevin, simulate.KernelAuto:
		return true
	}
	return false
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole binary behind a testable seam: it parses and validates
// args, executes, and returns the process exit code (0 ok, 1 runtime
// failure, 2 usage error — invalid flag values print the error followed by
// the usage text).
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ppexperiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	markdown := fs.Bool("markdown", false, "emit markdown tables")
	quick := fs.Bool("quick", false, "small sweeps for a fast smoke run")
	seed := fs.Int64("seed", 1, "seed for randomised experiments")
	batch := fs.Int64("batch", 0,
		"batched fast-path chunk size for the convergence experiment (0 = per-step)")
	kernel := fs.String("kernel", "",
		"interaction kernel for the convergence experiment: exact | batch | auto")
	workers := fs.Int("workers", 1,
		"worker goroutines for the convergence experiment's runs")
	exploreWorkers := fs.Int("explore-workers", 0,
		"frontier-expansion workers for the exhaustive model checks (0 = one per CPU)")
	memBudget := fs.Int64("mem-budget", 0,
		"resident-byte budget for the exhaustive model checks; spill to disk beyond it (0 = all in RAM)")
	spillDir := fs.String("spill-dir", "",
		"directory for explorer spill files (default the system temp directory)")
	topologyM := fs.Int64("topology-m", 0,
		"population size for the topology-convergence experiment (0 = default 16)")
	telemetry := obsflag.Register(fs)
	if err := fs.Parse(args); err != nil {
		return 2 // the flag package has already printed the error and usage
	}

	usageErr := func(err error) int {
		fmt.Fprintln(stderr, "ppexperiments:", err)
		fs.Usage()
		return 2
	}
	switch {
	case *workers < 1:
		return usageErr(fmt.Errorf("-workers must be ≥ 1, got %d", *workers))
	case *batch < 0:
		return usageErr(fmt.Errorf("-batch must be ≥ 0, got %d", *batch))
	case *exploreWorkers < 0:
		return usageErr(fmt.Errorf("-explore-workers must be ≥ 0, got %d", *exploreWorkers))
	case *memBudget < 0:
		return usageErr(fmt.Errorf("-mem-budget must be ≥ 0, got %d", *memBudget))
	case *topologyM < 0:
		return usageErr(fmt.Errorf("-topology-m must be ≥ 0, got %d", *topologyM))
	case !validKernel(*kernel):
		return usageErr(fmt.Errorf("-kernel must be one of %q, %q, %q, %q, %q, got %q",
			simulate.KernelExact, simulate.KernelBatch, simulate.KernelFluid,
			simulate.KernelLangevin, simulate.KernelAuto, *kernel))
	}
	stopTelemetry, err := telemetry.Start(stderr)
	if err != nil {
		return usageErr(err)
	}
	defer stopTelemetry()

	cfg := experiments.Config{Seed: *seed}
	if *quick {
		cfg = experiments.Config{
			Table1MaxN:        4,
			Figure1MaxTotal:   6,
			Figure1Exact:      false,
			Theorem3MaxN:      5,
			Theorem3SweepMaxN: 1,
			Theorem5MaxN:      4,
			ConvergenceSizes:  []int64{16, 32},
			ConvergenceRuns:   3,
			Seed:              *seed,
		}
	}
	cfg.ConvergenceBatch = *batch
	cfg.ConvergenceWorkers = *workers
	cfg.ConvergenceKernel = *kernel
	cfg.ExploreWorkers = *exploreWorkers
	cfg.ExploreMemBudget = *memBudget
	cfg.ExploreSpillDir = *spillDir
	cfg.TopologyM = *topologyM

	tables, err := experiments.All(cfg)
	if err != nil {
		fmt.Fprintln(stderr, "ppexperiments:", err)
		return 1
	}
	for _, t := range tables {
		if *markdown {
			err = t.Markdown(stdout)
		} else {
			err = t.Render(stdout)
		}
		if err != nil {
			fmt.Fprintln(stderr, "ppexperiments:", err)
			return 1
		}
	}
	return 0
}
