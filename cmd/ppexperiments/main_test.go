package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestRunFlagValidation pins the CLI contract: invalid flag values exit
// non-zero with an error plus the usage text — no panic, no silent clamp.
func TestRunFlagValidation(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string // substring of stderr
	}{
		{"zero workers", []string{"-workers", "0"}, "-workers must be ≥ 1"},
		{"negative workers", []string{"-workers", "-3"}, "-workers must be ≥ 1"},
		{"negative batch", []string{"-batch", "-1"}, "-batch must be ≥ 0"},
		{"negative explore workers", []string{"-explore-workers", "-1"}, "-explore-workers must be ≥ 0"},
		{"bogus kernel", []string{"-kernel", "turbo"}, "-kernel must be one of"},
		{"negative metrics interval", []string{"-metrics-interval", "-2s"}, "-metrics-interval must be ≥ 0"},
		{"negative topology m", []string{"-topology-m", "-4"}, "-topology-m must be ≥ 0"},
		{"non-numeric flag", []string{"-batch", "x"}, "invalid value"},
		{"unknown flag", []string{"-definitely-not-a-flag"}, "flag provided but not defined"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			code := run(tc.args, &stdout, &stderr)
			if code != 2 {
				t.Fatalf("exit code = %d, want 2\nstderr: %s", code, stderr.String())
			}
			if !strings.Contains(stderr.String(), tc.wantErr) {
				t.Fatalf("stderr missing %q:\n%s", tc.wantErr, stderr.String())
			}
			if !strings.Contains(stderr.String(), "Usage of ppexperiments") {
				t.Fatalf("usage-error stderr missing usage text:\n%s", stderr.String())
			}
			if stdout.Len() != 0 {
				t.Fatalf("usage error wrote to stdout:\n%s", stdout.String())
			}
		})
	}
}

// TestRunQuickMetricsInterval drives the full binary in quick mode with a
// periodic emitter and checks every stderr line is a well-formed JSON
// snapshot with live counters (the acceptance criterion for
// ppexperiments -metrics-interval).
func TestRunQuickMetricsInterval(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the quick experiment sweep")
	}
	defer obs.Disable()
	var stdout, stderr bytes.Buffer
	code := run([]string{"-quick", "-metrics", "-metrics-interval", "1ms"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d\nstderr: %s", code, stderr.String())
	}
	lines := strings.Split(strings.TrimSpace(stderr.String()), "\n")
	if len(lines) < 2 {
		t.Fatalf("expected periodic + final snapshots, got %d lines", len(lines))
	}
	var last obs.Snap
	for i, l := range lines {
		var snap obs.Snap
		if err := json.Unmarshal([]byte(l), &snap); err != nil {
			t.Fatalf("stderr line %d is not a valid JSON snapshot: %v\n%s", i, err, l)
		}
		last = snap
	}
	if last.Sched.Steps == 0 || last.Sim.RunsFinished == 0 || last.Explore.States == 0 {
		t.Fatalf("final snapshot missing live counters: %+v", last)
	}
	if !strings.Contains(stdout.String(), "E1 (Table 1)") {
		t.Fatalf("stdout missing experiment tables:\n%s", stdout.String())
	}
}
