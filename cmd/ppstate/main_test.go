package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/convert"
)

func runCapture(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errBuf bytes.Buffer
	code = run(args, &out, &errBuf)
	return code, out.String(), errBuf.String()
}

func TestUsageErrors(t *testing.T) {
	cases := [][]string{
		{"-n", "0"},
		{"-n", "-3"},
		{"-opt-full", "-1"},
		{"-no-such-flag"},
		{"-n", "2", "stray"},
	}
	for _, args := range cases {
		code, _, stderr := runCapture(t, args...)
		if code != 2 {
			t.Errorf("args %v: exit %d, want 2", args, code)
		}
		if !strings.Contains(stderr, "Usage") && !strings.Contains(stderr, "flag") {
			t.Errorf("args %v: stderr lacks usage text: %q", args, stderr)
		}
	}
}

func TestTable1Output(t *testing.T) {
	code, stdout, stderr := runCapture(t, "-n", "2")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	for _, want := range []string{"E1 (Table 1)", "unary", "binary"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("output lacks %q:\n%s", want, stdout)
		}
	}
	if strings.Contains(stdout, "E17") {
		t.Error("shrink table rendered without -opt")
	}
}

func TestOptTable(t *testing.T) {
	// -opt-full 0 keeps the test on the cheap counting-only path.
	code, stdout, stderr := runCapture(t, "-n", "1", "-opt", "-opt-full", "0")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	for _, want := range []string{"E1 (Table 1)", "E17 (shrink)", "figure1-4<=x<7", "czerner-threshold-n1"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("output lacks %q:\n%s", want, stdout)
		}
	}
}

func TestOptReportJSON(t *testing.T) {
	code, stdout, stderr := runCapture(t, "-n", "1", "-opt-report", "-opt-full", "0")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	var reports []*convert.OptReport
	if err := json.Unmarshal([]byte(stdout), &reports); err != nil {
		t.Fatalf("stdout is not an OptReport array: %v\n%s", err, stdout)
	}
	if len(reports) != 2 { // figure1 + czerner:1
		t.Fatalf("got %d reports, want 2", len(reports))
	}
	for _, r := range reports {
		if r.Pipeline != convert.PipelineTag {
			t.Errorf("%s: pipeline %q, want %q", r.Name, r.Pipeline, convert.PipelineTag)
		}
		if r.After.Instrs >= r.Before.Instrs {
			t.Errorf("%s: no instruction shrink (%d → %d)", r.Name, r.Before.Instrs, r.After.Instrs)
		}
		if r.After.Transitions != -1 || r.Before.Transitions != -1 {
			t.Errorf("%s: counting-only report materialised transitions", r.Name)
		}
	}
}

func TestOptReportFull(t *testing.T) {
	if testing.Short() {
		t.Skip("materialises figure1 and czerner:1 protocols")
	}
	code, stdout, stderr := runCapture(t, "-n", "1", "-opt-report", "-opt-full", "1")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	var reports []*convert.OptReport
	if err := json.Unmarshal([]byte(stdout), &reports); err != nil {
		t.Fatal(err)
	}
	for _, r := range reports {
		if r.Before.Transitions <= 0 || r.After.Transitions <= 0 {
			t.Fatalf("%s: full report lacks transition counts: %+v", r.Name, r)
		}
		if r.After.Transitions >= r.Before.Transitions {
			t.Errorf("%s: no transition shrink (%d → %d)",
				r.Name, r.Before.Transitions, r.After.Transitions)
		}
		if r.After.States >= r.Before.States {
			t.Errorf("%s: no state shrink (%d → %d)", r.Name, r.Before.States, r.After.States)
		}
	}
}

func TestMetricsSnapshot(t *testing.T) {
	code, _, stderr := runCapture(t, "-n", "1", "-opt-report", "-opt-full", "0", "-metrics")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	lines := strings.Split(strings.TrimSpace(stderr), "\n")
	var snap struct {
		Opt struct {
			Runs          int64 `json:"runs"`
			InstrsRemoved int64 `json:"instrs_removed"`
		} `json:"opt"`
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &snap); err != nil {
		t.Fatalf("stderr snapshot: %v\n%s", err, stderr)
	}
	if snap.Opt.Runs != 2 {
		t.Errorf("opt.runs = %d, want 2", snap.Opt.Runs)
	}
	if snap.Opt.InstrsRemoved <= 0 {
		t.Errorf("opt.instrs_removed = %d, want > 0", snap.Opt.InstrsRemoved)
	}
}
