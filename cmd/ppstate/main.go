// Command ppstate prints the state-complexity comparison (Table 1 of the
// paper, experiment E1): measured protocol state counts of the unary,
// binary and double-exponential threshold constructions for each threshold
// k(n) of the paper's family.
//
// Usage:
//
//	ppstate [-n max]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ppstate:", err)
		os.Exit(1)
	}
}

func run() error {
	maxN := flag.Int("n", 8, "largest construction level n to tabulate")
	flag.Parse()
	if *maxN < 1 {
		return fmt.Errorf("-n must be at least 1, got %d", *maxN)
	}
	t, err := experiments.Table1(*maxN)
	if err != nil {
		return err
	}
	return t.Render(os.Stdout)
}
