// Command ppstate prints the state-complexity comparison (Table 1 of the
// paper, experiment E1): measured protocol state counts of the unary,
// binary and double-exponential threshold constructions for each threshold
// k(n) of the paper's family.
//
// Usage:
//
//	ppstate [-n max]
//	ppstate -opt [-opt-full L]
//	ppstate -opt-report [-opt-full L]
//
// -opt additionally renders the shrink pipeline's before/after accounting
// (experiment E17): what every machine- and protocol-level optimization
// pass removed across the Table 1 family, against the Prop. 14/16 budgets.
// -opt-report instead prints the same accounting machine-readably, as a
// JSON array of convert.OptReport values. Both honour -opt-full L, which
// materialises full protocols — actual before/after |T|, not just state
// counts — for construction levels up to L (default 1; 0 counts only).
//
// Telemetry: -metrics prints a JSON snapshot (including the shrink
// pipeline's opt counters) to stderr on exit; -metrics-interval and -pprof
// behave as in ppsim.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/experiments"
	"repro/internal/obs/obsflag"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole binary behind a testable seam: it parses and validates
// args, executes, and returns the process exit code (0 ok, 1 runtime
// failure, 2 usage error).
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ppstate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	maxN := fs.Int("n", 8, "largest construction level n to tabulate")
	opt := fs.Bool("opt", false,
		"additionally render the shrink pipeline's before/after table (E17)")
	optReport := fs.Bool("opt-report", false,
		"print the shrink accounting as a JSON array of OptReports instead of tables")
	optFull := fs.Int("opt-full", 1,
		"materialise full protocols (before/after |T|) for construction levels up to this (0 = count states only); only used with -opt or -opt-report")
	telemetry := obsflag.Register(fs)
	if err := fs.Parse(args); err != nil {
		return 2 // the flag package has already printed the error and usage
	}

	usageErr := func(err error) int {
		fmt.Fprintln(stderr, "ppstate:", err)
		fs.Usage()
		return 2
	}
	switch {
	case *maxN < 1:
		return usageErr(fmt.Errorf("-n must be at least 1, got %d", *maxN))
	case *optFull < 0:
		return usageErr(fmt.Errorf("-opt-full must be ≥ 0, got %d", *optFull))
	case fs.NArg() > 0:
		return usageErr(fmt.Errorf("unexpected argument %q", fs.Arg(0)))
	}
	stopTelemetry, err := telemetry.Start(stderr)
	if err != nil {
		return usageErr(err)
	}
	defer stopTelemetry()

	fail := func(err error) int {
		fmt.Fprintln(stderr, "ppstate:", err)
		return 1
	}
	if *optReport {
		reports, err := experiments.ShrinkReports(*maxN, *optFull)
		if err != nil {
			return fail(err)
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			return fail(err)
		}
		return 0
	}
	t, err := experiments.Table1(*maxN)
	if err != nil {
		return fail(err)
	}
	if err := t.Render(stdout); err != nil {
		return fail(err)
	}
	if *opt {
		st, err := experiments.Shrink(*maxN, *optFull)
		if err != nil {
			return fail(err)
		}
		if err := st.Render(stdout); err != nil {
			return fail(err)
		}
	}
	return 0
}
