// Command ppexport renders the repository's objects in exchange formats:
// Graphviz DOT for protocol structures, machine control-flow graphs and
// reachability graphs, and CSV for convergence traces.
//
// Usage:
//
//	ppexport -what protocol  -target majority                > majority.dot
//	ppexport -what machine   -target figure1                 > figure1-cfg.dot
//	ppexport -what machine   -target czerner:2               > construction.dot
//	ppexport -what reach     -target majority -input 2,1     > reach.dot
//	ppexport -what trace     -target majority -input 60,40   > trace.csv
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/baseline"
	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/export"
	"repro/internal/multiset"
	"repro/internal/popprog"
	"repro/internal/protocol"
	"repro/internal/sched"
	"repro/internal/simulate"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ppexport:", err)
		os.Exit(1)
	}
}

func run() error {
	what := flag.String("what", "protocol", "what to export: protocol | machine | reach | trace")
	target := flag.String("target", "majority", "majority | unary:k | binary:j | remainder:m | figure1")
	input := flag.String("input", "", "comma-separated input counts (reach/trace)")
	seed := flag.Int64("seed", 1, "PRNG seed (trace)")
	maxStates := flag.Int("max-states", 500, "reachability graph size cap")
	period := flag.Int64("period", 100, "trace sampling period")
	flag.Parse()

	switch *what {
	case "machine":
		prog, err := buildProgram(*target)
		if err != nil {
			return err
		}
		m, err := compile.Compile(prog)
		if err != nil {
			return err
		}
		return export.MachineDOT(os.Stdout, m)
	case "protocol", "reach", "trace":
		p, err := buildProtocol(*target)
		if err != nil {
			return err
		}
		switch *what {
		case "protocol":
			return export.ProtocolDOT(os.Stdout, p)
		case "reach":
			counts, err := parseCounts(*input, len(p.Input))
			if err != nil {
				return err
			}
			c, err := p.InitialConfig(counts...)
			if err != nil {
				return err
			}
			return export.ReachabilityDOT(os.Stdout, p, []*multiset.Multiset{c}, *maxStates)
		default:
			counts, err := parseCounts(*input, len(p.Input))
			if err != nil {
				return err
			}
			s := sched.NewRandomPair(p, sched.NewRand(*seed))
			_, trace, err := simulate.RunTraced(p, counts, s, *period, simulate.Options{})
			if err != nil {
				return err
			}
			return export.TraceCSV(os.Stdout, trace)
		}
	default:
		return fmt.Errorf("unknown -what %q", *what)
	}
}

func buildProgram(target string) (*popprog.Program, error) {
	parts := strings.SplitN(target, ":", 2)
	var param int
	if len(parts) == 2 {
		v, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, err
		}
		param = v
	}
	switch parts[0] {
	case "figure1":
		return popprog.Figure1Program(), nil
	case "czerner":
		c, err := core.New(param)
		if err != nil {
			return nil, err
		}
		return c.Program, nil
	case "equality":
		c, err := core.NewEquality(param)
		if err != nil {
			return nil, err
		}
		return c.Program, nil
	default:
		return nil, fmt.Errorf("unknown program target %q", target)
	}
}

func buildProtocol(target string) (*protocol.Protocol, error) {
	parts := strings.SplitN(target, ":", 2)
	var param int64
	if len(parts) == 2 {
		v, err := strconv.ParseInt(parts[1], 10, 64)
		if err != nil {
			return nil, err
		}
		param = v
	}
	switch parts[0] {
	case "majority":
		return baseline.Majority()
	case "unary":
		return baseline.UnaryThreshold(param)
	case "binary":
		return baseline.BinaryThreshold(int(param))
	case "remainder":
		return baseline.Remainder(param, 0)
	default:
		return nil, fmt.Errorf("unknown protocol target %q", target)
	}
}

func parseCounts(s string, want int) ([]int64, error) {
	if s == "" {
		return nil, errors.New("-input is required for this export")
	}
	parts := strings.Split(s, ",")
	if len(parts) != want {
		return nil, fmt.Errorf("need %d input counts, got %d", want, len(parts))
	}
	out := make([]int64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}
