// Command ppserved serves the repository's simulation engines over
// HTTP/JSON: submit simulate/sweep/explore jobs against built-in targets or
// inline population-program source, poll their status, stream progress and
// telemetry, and fetch results. Program submissions share a
// content-addressed cache of §7 compile→convert results — persisted under
// -state-dir, so a restarted server boots warm and serves byte-identical
// results without reconverting; sweep jobs with a checkpoint name survive
// restarts and resume bit-identically. Explore jobs accept a "mem_budget"
// byte cap in their spec: beyond it the explorer spills interned keys and
// frontier levels to <state-dir>/spill (cleaned up per job) and streams
// them back, bit-identically, so exhaustive verification jobs can exceed
// RAM.
//
// Usage:
//
//	ppserved -addr :8080 -state-dir /var/lib/ppserved
//
// then, for example:
//
//	curl -s localhost:8080/api/v1/jobs -d '{"kind":"simulate","target":"majority","input":[60,40],"runs":5}'
//	curl -s localhost:8080/api/v1/jobs/j000001
//	curl -s localhost:8080/api/v1/jobs/j000001/result
//
// See DESIGN.md for the API and the server architecture.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/obs/obsflag"
	"repro/internal/serve"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, nil))
}

// run is the whole daemon behind a testable seam. ready, when non-nil,
// receives the bound listen address once the server is accepting — tests
// use it to connect without racing startup. Exit codes: 0 clean shutdown,
// 1 runtime failure, 2 usage error.
func run(args []string, stdout, stderr io.Writer, ready chan<- string) int {
	fs := flag.NewFlagSet("ppserved", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "localhost:8080", "listen address")
	stateDir := fs.String("state-dir", "", "directory for job persistence and sweep checkpoints (empty = in-memory only)")
	queueDepth := fs.Int("queue", 0, "job queue depth (0 = default 64); a full queue rejects submissions with 429")
	workers := fs.Int("workers", 0, "concurrent job runners (0 = default 2)")
	cacheSize := fs.Int("cache", 0, "compiled-protocol cache entries (0 = default 32)")
	checkpointEvery := fs.Int("checkpoint-every", 0, "sweep points between checkpoint writes (0 = default 1)")
	telemetry := obsflag.Register(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	usageErr := func(err error) int {
		fmt.Fprintln(stderr, "ppserved:", err)
		fs.Usage()
		return 2
	}
	switch {
	case *queueDepth < 0:
		return usageErr(fmt.Errorf("-queue must be ≥ 0, got %d", *queueDepth))
	case *workers < 0:
		return usageErr(fmt.Errorf("-workers must be ≥ 0, got %d", *workers))
	case *cacheSize < 0:
		return usageErr(fmt.Errorf("-cache must be ≥ 0, got %d", *cacheSize))
	case *checkpointEvery < 0:
		return usageErr(fmt.Errorf("-checkpoint-every must be ≥ 0, got %d", *checkpointEvery))
	}
	stopTelemetry, err := telemetry.Start(stderr)
	if err != nil {
		return usageErr(err)
	}
	defer stopTelemetry()

	srv, err := serve.New(serve.Config{
		QueueDepth:      *queueDepth,
		Workers:         *workers,
		CacheSize:       *cacheSize,
		StateDir:        *stateDir,
		CheckpointEvery: *checkpointEvery,
	})
	if err != nil {
		fmt.Fprintln(stderr, "ppserved:", err)
		return 1
	}
	defer srv.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "ppserved:", err)
		return 1
	}
	fmt.Fprintf(stdout, "ppserved: listening on %s\n", ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}

	httpSrv := &http.Server{Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-sigCtx.Done():
		fmt.Fprintln(stdout, "ppserved: shutting down")
		httpSrv.Shutdown(context.Background())
		<-errCh
		return 0
	case err := <-errCh:
		if errors.Is(err, http.ErrServerClosed) {
			return 0
		}
		fmt.Fprintln(stderr, "ppserved:", err)
		return 1
	}
}
