package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestUsageErrors(t *testing.T) {
	cases := [][]string{
		{"-queue", "-1"},
		{"-workers", "-1"},
		{"-cache", "-1"},
		{"-checkpoint-every", "-1"},
		{"-nonsense"},
	}
	for _, args := range cases {
		var out, errBuf bytes.Buffer
		if code := run(args, &out, &errBuf, nil); code != 2 {
			t.Fatalf("run(%v) = %d, want 2 (stderr %s)", args, code, errBuf.String())
		}
	}
}

func TestBadListenAddr(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-addr", "256.0.0.1:http"}, &out, &errBuf, nil); code != 1 {
		t.Fatalf("run = %d, want 1 (stderr %s)", code, errBuf.String())
	}
}

// TestEndToEnd boots the daemon on an ephemeral port, submits a job over
// real HTTP, reads its result, and shuts down via SIGTERM — the whole
// quickstart flow in one test.
func TestEndToEnd(t *testing.T) {
	if os.Getenv("CI_NO_SIGNALS") != "" {
		t.Skip("environment forbids self-signalling")
	}
	stateDir := t.TempDir()
	ready := make(chan string, 1)
	var out, errBuf bytes.Buffer
	exit := make(chan int, 1)
	go func() {
		exit <- run([]string{"-addr", "localhost:0", "-state-dir", stateDir, "-workers", "1"},
			&out, &errBuf, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case code := <-exit:
		t.Fatalf("daemon exited %d before ready (stderr %s)", code, errBuf.String())
	case <-time.After(30 * time.Second):
		t.Fatal("daemon not ready after 30s")
	}
	base := "http://" + addr

	resp, err := http.Post(base+"/api/v1/jobs", "application/json",
		strings.NewReader(`{"kind":"simulate","target":"majority","input":[30,20],"runs":3,"seed":7}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var accepted struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &accepted); err != nil || accepted.ID == "" {
		t.Fatalf("accept document %s (err %v)", body, err)
	}

	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(base + "/api/v1/jobs/" + accepted.ID)
		if err != nil {
			t.Fatal(err)
		}
		body, _ = io.ReadAll(resp.Body)
		resp.Body.Close()
		var j struct {
			Status string          `json:"status"`
			Error  string          `json:"error"`
			Result json.RawMessage `json:"result"`
		}
		if err := json.Unmarshal(body, &j); err != nil {
			t.Fatalf("status document %s: %v", body, err)
		}
		if j.Status == "done" {
			if len(j.Result) == 0 {
				t.Fatalf("done without result: %s", body)
			}
			break
		}
		if j.Status == "failed" || j.Status == "cancelled" {
			t.Fatalf("job ended %s: %s", j.Status, j.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job still %s after 60s", j.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// SIGTERM lands on the whole process; the daemon's NotifyContext
	// catches it and drives the graceful-shutdown path.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("daemon exited %d (stderr %s)", code, errBuf.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not shut down on SIGTERM")
	}
	if !strings.Contains(out.String(), "shutting down") {
		t.Fatalf("missing shutdown log in %q", out.String())
	}
}
