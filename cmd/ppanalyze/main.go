// Command ppanalyze prints the static analysis of a population program:
// sizes, call graph, stack-depth bound, dead procedures, register usage,
// and the inlined-size ablation (§4's succinctness argument, quantified).
//
// Usage:
//
//	ppanalyze -target figure1
//	ppanalyze -target czerner:3
//	ppanalyze -program path/to/file.pop
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/popprog"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ppanalyze:", err)
		os.Exit(1)
	}
}

func run() error {
	target := flag.String("target", "figure1", "figure1 | czerner:n | equality:n")
	programPath := flag.String("program", "", "path to a .pop program (overrides -target)")
	flag.Parse()

	prog, err := loadProgram(*target, *programPath)
	if err != nil {
		return err
	}
	report, err := analysis.Analyze(prog)
	if err != nil {
		return err
	}
	inlined, err := analysis.InlinedInstructionCount(prog)
	if err != nil {
		return err
	}

	fmt.Printf("program %s\n", prog.Name)
	fmt.Printf("  size:                %d (registers %d + instructions %d + swap-size %d)\n",
		prog.Size(), len(prog.Registers), prog.InstructionCount(), prog.SwapSize())
	fmt.Printf("  inlined size:        %d instructions (×%.1f)\n",
		inlined, float64(inlined)/float64(prog.InstructionCount()))
	fmt.Printf("  max call depth:      %d frames\n", report.MaxCallDepth)
	fmt.Printf("  procedures:          %d (%d dead)\n",
		len(prog.Procedures), len(report.DeadProcedures))
	if len(report.DeadProcedures) > 0 {
		names := make([]string, len(report.DeadProcedures))
		for i, d := range report.DeadProcedures {
			names[i] = prog.Procedures[d].Name
		}
		fmt.Printf("  dead procedures:     %s\n", strings.Join(names, ", "))
	}
	fmt.Println("  register usage:")
	for i, use := range report.Registers {
		var flags []string
		if use.Detected {
			flags = append(flags, "detect")
		}
		if use.MovedFrom {
			flags = append(flags, "src")
		}
		if use.MovedTo {
			flags = append(flags, "dst")
		}
		if use.Swapped {
			flags = append(flags, "swap")
		}
		if use.Unused() {
			flags = append(flags, "UNUSED")
		}
		fmt.Printf("    %-6s %s\n", prog.Registers[i], strings.Join(flags, ","))
	}
	fmt.Println("  call graph:")
	for i, callees := range report.CallGraph {
		if len(callees) == 0 {
			continue
		}
		names := make([]string, len(callees))
		for j, c := range callees {
			names[j] = prog.Procedures[c].Name
		}
		fmt.Printf("    %-18s → %s\n", prog.Procedures[i].Name, strings.Join(names, ", "))
	}
	return nil
}

func loadProgram(target, programPath string) (*popprog.Program, error) {
	if programPath != "" {
		src, err := os.ReadFile(programPath)
		if err != nil {
			return nil, err
		}
		return popprog.Parse(string(src))
	}
	parts := strings.SplitN(target, ":", 2)
	var param int
	if len(parts) == 2 {
		v, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, err
		}
		param = v
	}
	switch parts[0] {
	case "figure1":
		return popprog.Figure1Program(), nil
	case "czerner":
		c, err := core.New(param)
		if err != nil {
			return nil, err
		}
		return c.Program, nil
	case "equality":
		c, err := core.NewEquality(param)
		if err != nil {
			return nil, err
		}
		return c.Program, nil
	default:
		return nil, errors.New("unknown target")
	}
}
