// Threshold: the paper's headline result end-to-end. Builds the n-level
// construction (Theorem 3), shows the double-exponential threshold and the
// O(n) sizes through both conversions (Theorem 5), and decides populations
// around the threshold with the population-program interpreter.
//
//	go run ./examples/threshold
package main

import (
	"fmt"
	"log"

	"repro/internal/compile"
	"repro/internal/convert"
	"repro/internal/core"
	"repro/internal/popprog"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. The size story: for each n, an O(n)-size program decides
	//    x ≥ k(n) with k(n) ≥ 2^(2^(n-1)).
	fmt.Println("Theorem 3: O(n)-size programs for double-exponential thresholds")
	for n := 1; n <= 6; n++ {
		c, err := core.New(n)
		if err != nil {
			return err
		}
		machine, err := compile.Compile(c.Program)
		if err != nil {
			return err
		}
		_, protocolStates, err := convert.CountStates(machine)
		if err != nil {
			return err
		}
		fmt.Printf("  n=%d: k = %-14s program size %-4d machine size %-5d protocol states %d\n",
			n, c.K, c.Program.Size(), machine.Size(), protocolStates)
	}

	// 2. Decide populations around k(2) = 10 with the interpreter. The
	//    restart oracle mixes in the good-configuration hint (see
	//    EXPERIMENTS.md, "restart acceleration").
	c, err := core.New(2)
	if err != nil {
		return err
	}
	fmt.Printf("\ndeciding x ≥ %s with the n=2 construction:\n", c.K)
	for _, m := range []int64{8, 9, 10, 11, 14} {
		res, err := popprog.DecideTotal(c.Program, m, popprog.DecideOptions{
			Seed: m, Budget: 4_000_000, TruthProb: 0.85, Attempts: 5,
			RestartHint: c.RestartHint(), HintProb: 0.3,
		})
		if err != nil {
			return fmt.Errorf("m=%d: %w", m, err)
		}
		fmt.Printf("  m=%-3d → %-5v (expected %-5v; %d restarts, %d steps)\n",
			m, res.Output, m >= 10, res.Restarts, res.Steps)
	}

	// 3. The level constants grow by repeated squaring — print the ladder.
	c5, err := core.New(5)
	if err != nil {
		return err
	}
	fmt.Println("\nlevel constants N_i (N₁ = 1, N_{i+1} = (N_i + 1)²):")
	for i, v := range c5.Ns {
		fmt.Printf("  N_%d = %s\n", i+1, v)
	}
	return nil
}
