// Quickstart: build the classic 4-state majority protocol (the paper's
// introductory example, §1), run it under the uniform random-pair
// scheduler, and verify it exactly for all small populations.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/baseline"
	"repro/internal/explore"
	"repro/internal/sched"
	"repro/internal/simulate"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. Build the protocol: agents start as strong supporters X or Y and
	//    decide whether x ≥ y by stable consensus.
	p, err := baseline.Majority()
	if err != nil {
		return err
	}
	fmt.Printf("protocol %q: %d states, %d transitions\n",
		p.Name, p.NumStates(), len(p.Transitions))

	// 2. Simulate a single run: 60 X-agents vs 40 Y-agents.
	s := sched.NewRandomPair(p, sched.NewRand(42))
	res, err := simulate.RunInput(p, []int64{60, 40}, s, simulate.Options{})
	if err != nil {
		return err
	}
	fmt.Printf("60 vs 40 → output %v after %d interactions (parallel time %.1f)\n",
		res.Output, res.Steps, res.ParallelTime())

	// 3. Verify exactly: for every initial configuration with at most 6
	//    agents, every fair run stabilises to the correct answer. This is
	//    the bottom-SCC characterisation of stable computation (§3).
	if err := explore.CheckDecides(p, baseline.MajorityPredicate, 1, 6, explore.Options{}); err != nil {
		return fmt.Errorf("exact verification: %w", err)
	}
	fmt.Println("exact verification passed for all inputs with ≤ 6 agents")
	return nil
}
