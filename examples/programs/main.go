// Programs: writing your own population program (the model of §4) and
// taking it through the whole pipeline — interpret it, compile it to a
// population machine (§7.2), convert it to a population protocol (§7.3) —
// using the paper's Figure 1 example (4 ≤ x < 7) as the running program.
//
//	go run ./examples/programs
package main

import (
	"fmt"
	"log"

	"repro/internal/compile"
	"repro/internal/convert"
	"repro/internal/popprog"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. The program: Figure 1 of the paper. Test(i) is a parameterised
	//    procedure; the for-loop inside it is macro-expanded.
	prog := popprog.Figure1Program()
	fmt.Printf("program %q\n", prog.Name)
	fmt.Printf("  registers:    %v\n", prog.Registers)
	for _, proc := range prog.Procedures {
		fmt.Printf("  procedure %s\n", proc.Name)
	}
	fmt.Printf("  size: %d = |Q| %d + instructions %d + swap-size %d\n",
		prog.Size(), len(prog.Registers), prog.InstructionCount(), prog.SwapSize())

	// 2. Interpret it: the program decides the predicate on the *total*
	//    number of agents, whatever registers they start in.
	fmt.Println("\ninterpreter decisions (4 ≤ m < 7):")
	for m := int64(2); m <= 8; m++ {
		res, err := popprog.DecideTotal(prog, m, popprog.DecideOptions{Seed: m, Budget: 300_000})
		if err != nil {
			return fmt.Errorf("m=%d: %w", m, err)
		}
		fmt.Printf("  m=%d → %-5v (expected %v)\n", m, res.Output, m >= 4 && m < 7)
	}

	// 3. Compile to a population machine: three instruction kinds only.
	machine, err := compile.Compile(prog)
	if err != nil {
		return err
	}
	fmt.Printf("\ncompiled machine: %d instructions, %d pointers, size %d\n",
		machine.NumInstrs(), len(machine.Pointers), machine.Size())
	fmt.Println("first instructions (entry stub + restart helper):")
	for _, line := range machine.Listing()[:8] {
		fmt.Println("  " + line)
	}

	// 4. Convert to a population protocol: register agents + one unique
	//    agent per pointer, elected on the fly (Lemma 15).
	conv, err := convert.Convert(machine)
	if err != nil {
		return err
	}
	fmt.Printf("\nconverted protocol: %d states (= 2·|Q*| = 2·%d), %d transitions\n",
		conv.Protocol.NumStates(), conv.CoreStates, len(conv.Protocol.Transitions))
	fmt.Printf("it decides φ'(m) ⟺ m ≥ %d ∧ 4 ≤ m − %d < 7 — the %d pointer agents\n",
		conv.NumPointers, conv.NumPointers, conv.NumPointers)
	fmt.Println("are part of the population (Theorem 5).")
	return nil
}
