// Equality: the §9 extension — the same O(n)-state machinery decides the
// *exact-count* predicate x = k(n). The only change is the final invariant
// loop, which additionally watches the surplus register R and flips the
// output to false if any surplus is ever detected.
//
//	go run ./examples/equality
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/core"
	"repro/internal/popprog"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	c, err := core.NewEquality(2)
	if err != nil {
		return err
	}
	th, err := core.New(2)
	if err != nil {
		return err
	}
	fmt.Printf("equality construction: decide x = %s\n", c.K)
	fmt.Printf("size %d (threshold variant: %d — the equality check costs %d extra units)\n\n",
		c.Program.Size(), th.Program.Size(), c.Program.Size()-th.Program.Size())

	for _, m := range []int64{8, 9, 10, 11, 12} {
		res, err := popprog.DecideTotal(c.Program, m, popprog.DecideOptions{
			Seed: m, Budget: 4_000_000, TruthProb: 0.85, Attempts: 5,
			RestartHint: c.RestartHint(), HintProb: 0.3,
		})
		if err != nil {
			return fmt.Errorf("m=%d: %w", m, err)
		}
		fmt.Printf("  m=%-3d → %-5v (expected %-5v)\n", m, res.Output, m == 10)
	}

	fmt.Println("\nModified Main (final loop watches R):")
	fmt.Println(excerpt(c.Program.Format(), "procedure Main", 14))
	return nil
}

// excerpt returns up to n lines starting at the line containing marker.
func excerpt(text, marker string, n int) string {
	lines := strings.Split(text, "\n")
	for i, line := range lines {
		if strings.Contains(line, marker) {
			end := i + n
			if end > len(lines) {
				end = len(lines)
			}
			return strings.Join(lines[i:end], "\n")
		}
	}
	return ""
}
