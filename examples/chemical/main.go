// Chemical: the robustness story of §8 in chemical-reaction-network terms.
// In a CRN, a state is a molecular species and an agent is a molecule;
// trace amounts of unwanted species are unavoidable. All prior threshold
// protocols are 1-aware — a single "accept" molecule flips their decision —
// while the paper's construction is almost self-stabilising: it tolerates
// arbitrary noise species (Theorem 2).
//
//	go run ./examples/chemical
package main

import (
	"fmt"
	"log"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/multiset"
	"repro/internal/popprog"
	"repro/internal/sched"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. The 1-aware failure: the unary "flock of birds" protocol for
	//    x ≥ 5, given 2 intended molecules plus ONE contaminant in the
	//    accepting species K, wrongly accepts — provably, over all fair
	//    runs.
	unary, err := baseline.UnaryThreshold(5)
	if err != nil {
		return err
	}
	noisy, err := baseline.NoisyConfig(unary, []int64{2}, map[string]int64{"K": 1})
	if err != nil {
		return err
	}
	res, err := explore.Explore(explore.NewProtocolSystem(unary),
		[]*multiset.Multiset{noisy}, explore.Options{})
	if err != nil {
		return err
	}
	fmt.Println("unary x ≥ 5 with 2 intended molecules + 1 noise molecule in K:")
	fmt.Printf("  every fair run stabilises to %v — the protocol is 1-aware and fooled\n",
		res.Consensus())

	// 2. The paper's construction under heavy contamination: the n = 2
	//    program (x ≥ 10) is run from configurations where every molecule
	//    starts in an arbitrary species (register). The detect-restart
	//    loop rejects bad configurations and the output converges to the
	//    truth about the *total* count.
	c, err := core.New(2)
	if err != nil {
		return err
	}
	fmt.Printf("\nthis paper's construction, x ≥ %s, molecules scattered adversarially:\n", c.K)
	rng := sched.NewRand(7)
	for _, m := range []int64{7, 10, 13} {
		cfg := multiset.New(c.NumRegisters())
		for u := int64(0); u < m; u++ {
			cfg.Add(rng.Intn(c.NumRegisters()), 1)
		}
		out, err := popprog.Decide(c.Program, cfg, popprog.DecideOptions{
			Seed: 100 + m, Budget: 5_000_000, TruthProb: 0.85, Attempts: 5,
			RestartHint: c.RestartHint(), HintProb: 0.3,
		})
		if err != nil {
			return fmt.Errorf("m=%d: %w", m, err)
		}
		fmt.Printf("  %2d molecules in random species → %-5v (expected %-5v; %d restarts)\n",
			m, out.Output, m >= 10, out.Restarts)
	}

	fmt.Println("\nthe construction accepts only provisionally and keeps re-checking its")
	fmt.Println("invariants (it is not 1-aware), which is exactly why the noise cannot fool it.")
	return nil
}
