#!/usr/bin/env bash
# docs_health.sh — CI docs-health gate.
#
# Checks, in order:
#   1. every relative markdown link in the repo's *.md files resolves to an
#      existing file or directory (external http(s)/mailto links and pure
#      #anchors are skipped);
#   2. gofmt -l reports no unformatted files;
#   3. go vet ./... is clean.
#
# Run from anywhere inside the repo; exits non-zero on the first category
# of failure with a list of offenders.
set -u
cd "$(dirname "$0")/.."

fail=0

# --- 1. relative markdown links -------------------------------------------
# Find *.md outside .git; extract ](target) occurrences; keep relative ones.
while IFS= read -r md; do
    dir=$(dirname "$md")
    # grep -o keeps one match per line even with several links on a line.
    while IFS= read -r raw; do
        target=${raw#](}
        target=${target%)}
        case "$target" in
        http://* | https://* | mailto:* | "#"*) continue ;;
        esac
        target=${target%%#*} # strip in-file anchor
        [ -z "$target" ] && continue
        if [ ! -e "$dir/$target" ]; then
            echo "broken link: $md -> $target"
            fail=1
        fi
    done < <(grep -oE '\]\([^)]+\)' "$md" 2>/dev/null || true)
done < <(find . -path ./.git -prune -o -name '*.md' -print)

if [ "$fail" -ne 0 ]; then
    echo "docs_health: broken markdown links" >&2
    exit 1
fi
echo "docs_health: markdown links OK"

# --- 2. gofmt --------------------------------------------------------------
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "docs_health: unformatted Go files:" >&2
    echo "$unformatted" >&2
    exit 1
fi
echo "docs_health: gofmt OK"

# --- 3. go vet -------------------------------------------------------------
if ! go vet ./...; then
    echo "docs_health: go vet failed" >&2
    exit 1
fi
echo "docs_health: go vet OK"
