#!/usr/bin/env bash
# bench.sh — run the simulation benchmark suite and emit BENCH_simulate.json.
#
# Covers the scheduler-level StepN benchmarks (exact vs collision kernel),
# the end-to-end RunKernels convergence benchmark, the root
# BatchStepN / MeasureConvergence benchmarks, the fluid-tier benchmarks
# (FluidStepN chunk cost, LadderConvergence end-to-end at m = 10⁹/10¹²),
# the E17 shrink benchmarks (whose removal metrics come from the `opt` obs
# group, so pipeline regressions land in the record), and the out-of-core
# explorer benchmark (ExploreSpill: all-RAM vs spilled at a matched state
# count — states/sec and resident bytes per state).
# Each JSON record carries the
# benchmark name, iteration count and every (value, unit) metric pair Go
# reported — ns/op, ns/interaction, interactions/s, B/op, allocs/op, ...
#
# Usage:
#   scripts/bench.sh [output.json]          # default BENCH_simulate.json
#   BENCHTIME=2s scripts/bench.sh           # longer runs, steadier numbers
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_simulate.json}"
benchtime="${BENCHTIME:-1s}"

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench 'StepN|MeasureConvergence|RunKernels|Ladder|Shrink|ExploreSpill' \
  -benchmem -benchtime "$benchtime" \
  ./internal/sched ./internal/simulate ./internal/fluid ./internal/explore . | tee "$raw"

awk -v go_version="$(go version)" -v date_utc="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
/^Benchmark/ {
    name = $1
    iters = $2
    m = ""
    for (i = 3; i + 1 <= NF; i += 2) {
        if (m != "") m = m ","
        m = m sprintf("\"%s\":%s", $(i + 1), $i)
    }
    recs[n++] = sprintf("{\"name\":\"%s\",\"iterations\":%s,\"metrics\":{%s}}", name, iters, m)
}
END {
    printf "{\n"
    printf "  \"go\": \"%s\",\n", go_version
    printf "  \"date\": \"%s\",\n", date_utc
    printf "  \"benchtime\": \"'"$benchtime"'\",\n"
    printf "  \"benchmarks\": [\n"
    for (i = 0; i < n; i++)
        printf "    %s%s\n", recs[i], (i < n - 1 ? "," : "")
    printf "  ]\n}\n"
}' "$raw" > "$out"

echo "wrote $out ($(grep -c '"name"' "$out") benchmarks)"
